//===- atom/Engine.cpp - Instrumented-executable construction -------------===//

#include "atom/Engine.h"

#include "isa/ConstantSynth.h"
#include "link/Linker.h"
#include "obs/Obs.h"
#include "om/DataFlow.h"
#include "om/Lift.h"
#include "om/Liveness.h"
#include "om/Rename.h"
#include "runtime/Runtime.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <memory>

using namespace atom;
using namespace atom::isa;
using namespace atom::obj;
using namespace atom::om;
// Disambiguate against the API handle types atom::Inst / atom::Block.
using MInst = atom::isa::Inst;
using OBlock = atom::om::Block;

namespace {

/// Scratch (t0..t11) register mask, the delayable portion of save sets.
uint32_t scratchMask() {
  uint32_t M = 0;
  for (unsigned R = RegT0; R <= RegT7; ++R)
    M |= 1u << R;
  for (unsigned R = RegT8; R <= RegT11; ++R)
    M |= 1u << R;
  return M;
}

class Engine {
public:
  Engine(const Executable &AppExe, const AtomOptions &Opts,
         DiagEngine &Diags, const PipelineReuse *Reuse)
      : AppExe(AppExe), Opts(resolveAtomOptions(Opts)), Diags(Diags),
        Reuse(Reuse) {}

  bool run(const std::function<void(InstrumentationContext &)> &InstrumentFn,
           const std::vector<ObjectModule> &AnalysisModules,
           InstrumentedProgram &Out);

private:
  bool error(const std::string &Msg) {
    Diags.error(0, Msg);
    return false;
  }

  bool prepareAnalysisUnit(const std::vector<ObjectModule> &AnalysisModules);
  bool resolveTargets(const InstrumentationContext &Ctx);
  void stripUnreachable(const std::vector<std::string> &Roots);
  std::map<std::string, std::vector<std::string>> buildCallGraph() const;
  bool isPatchable(const Procedure &P, int64_t &Frame) const;
  bool isInlinable(const Procedure &P, unsigned NumArgs) const;
  bool patchProcSaves(Procedure &P, uint32_t SaveMask);
  std::string makeWrapper(const std::string &Target, uint32_t SaveMask,
                          unsigned NumArgs);
  bool setupCallTargets(const InstrumentationContext &Ctx);
  bool linkHeaps();

  std::vector<InstNode> genCallSeq(const Action &A, const InstNode *Site,
                                   uint32_t LiveMask);
  std::vector<InstNode> genCallSeqCore(const Action &A, const InstNode *Site,
                                       uint32_t LiveMask);
  bool insertSequences(const InstrumentationContext &Ctx);

  int analSymbol(const std::string &Name) const {
    for (size_t I = 0; I < Anal.Symbols.size(); ++I)
      if (Anal.Symbols[I].Name == Name &&
          Anal.Symbols[I].Section != SymSection::Undefined)
        return int(I);
    return -1;
  }

  const Executable &AppExe;
  AtomOptions Opts;
  DiagEngine &Diags;
  const PipelineReuse *Reuse; ///< Optional precomputed inputs (may be null).

  Unit App, Anal;
  DataFlowResult DF;
  InstrStats Stats;

  /// Per referenced analysis procedure: the symbol actually called from
  /// instrumentation sites (the procedure itself or its wrapper), and the
  /// registers the *site* must additionally save (SiteLiveness only).
  struct TargetInfo {
    std::string CallSymbol;
    unsigned NumProtoArgs = 0;
    uint32_t TransMod = 0;       ///< For SiteLiveness site-save computation.
    uint32_t SiteExtraSaves = 0; ///< DirectInline fallback: registers the
                                 ///< site saves when the analysis routine
                                 ///< cannot be prologue-patched.
    int InlineProcIdx = -1; ///< Inlining enabled and the routine is
                            ///< eligible: index (stable under wrapper
                            ///< appends) of the body to copy into sites.
    /// Branching-inliner body plan (BranchyInline; supersedes
    /// InlineProcIdx when set).
    std::shared_ptr<probeopt::InlinePlan> Plan;
    /// Hoisted-guard plan for out-of-line calls (GuardHoist).
    std::shared_ptr<probeopt::GuardPlan> Guard;
    /// USE summary for out-of-line dead-argument elision (ElideDeadArgs
    /// with SiteLiveness): ~0 means "assume every argument is read".
    uint32_t ArgsUsed = ~0u;
  };
  std::map<std::string, TargetInfo> Targets;

  /// Interprocedural liveness summaries of the application (SiteLiveness
  /// strategy only; built lazily).
  std::unique_ptr<UseDefSummaries> AppSummaries;
  /// USE summaries of the analysis unit (dead-argument elision; lazy).
  std::unique_ptr<UseDefSummaries> AnalUseSummaries;

  uint64_t FakePC = 0x40000000; ///< Synthetic OrigPC space for wrappers.
  bool Failed = false; ///< Set by helpers without an error channel
                       ///< (genCallSeq); checked after insertion.
};

//===----------------------------------------------------------------------===//
// Analysis unit preparation
//===----------------------------------------------------------------------===//

bool Engine::prepareAnalysisUnit(
    const std::vector<ObjectModule> &AnalysisModules) {
  return buildAnalysisUnit(AnalysisModules, Anal, Diags);
}

bool Engine::resolveTargets(const InstrumentationContext &Ctx) {
  for (const std::string &Name : Ctx.referencedProcs()) {
    if (!Anal.findProc(Name))
      return error("analysis procedure '" + Name +
                   "' is not defined in the analysis routines");
    const InstrumentationContext::ProtoInfo *Proto = Ctx.findProto(Name);
    TargetInfo TI;
    TI.CallSymbol = Name; // may be replaced by a wrapper later
    TI.NumProtoArgs = unsigned(Proto->Params.size());
    Targets.emplace(Name, TI);
  }
  return true;
}

std::map<std::string, std::vector<std::string>> Engine::buildCallGraph()
    const {
  std::map<std::string, std::vector<std::string>> CG;
  for (const Procedure &P : Anal.Procs) {
    std::vector<std::string> &Callees = CG[P.Name];
    for (const OBlock &B : P.Blocks)
      for (const InstNode &N : B.Insts)
        if (N.I.Op == Opcode::Bsr && N.HasReloc && N.Ref.SymIndex >= 0)
          Callees.push_back(Anal.Symbols[size_t(N.Ref.SymIndex)].Name);
  }
  return CG;
}

void Engine::stripUnreachable(const std::vector<std::string> &Roots) {
  auto CG = buildCallGraph();
  std::set<std::string> Keep;
  std::vector<std::string> Work(Roots.begin(), Roots.end());
  while (!Work.empty()) {
    std::string N = Work.back();
    Work.pop_back();
    if (!Keep.insert(N).second)
      continue;
    auto It = CG.find(N);
    if (It != CG.end())
      for (const std::string &C : It->second)
        Work.push_back(C);
  }

  std::vector<Procedure> Kept;
  for (Procedure &P : Anal.Procs) {
    if (Keep.count(P.Name))
      Kept.push_back(std::move(P));
    else
      ++Stats.StrippedProcs;
  }
  Anal.Procs = std::move(Kept);
  Anal.ProcByName.clear();
  for (size_t I = 0; I < Anal.Procs.size(); ++I)
    Anal.ProcByName[Anal.Procs[I].Name] = int(I);
}

//===----------------------------------------------------------------------===//
// Prologue patching (DirectInline / Distributed save strategies)
//===----------------------------------------------------------------------===//

bool Engine::isPatchable(const Procedure &P, int64_t &Frame) const {
  if (P.Blocks.empty() || P.Blocks[0].Insts.empty())
    return false;
  const MInst &First = P.Blocks[0].Insts[0].I;
  if (First.Op != Opcode::Lda || First.Ra != RegSP || First.Rb != RegSP ||
      First.Disp >= 0)
    return false;
  Frame = -int64_t(First.Disp);

  for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
    const OBlock &B = P.Blocks[BI];
    for (size_t II = 0; II < B.Insts.size(); ++II) {
      if (BI == 0 && II == 0)
        continue;
      const MInst &I = B.Insts[II].I;
      bool ReadsSP = readRegs(I) & (1u << RegSP);
      bool WritesSP = writtenRegs(I) & (1u << RegSP);
      if (!ReadsSP && !WritesSP)
        continue;
      // Allowed: memory accesses based on sp, and the epilogue's
      // 'lda sp, +F(sp)'. Anything else (e.g. 'addq tX, sp, tX' in
      // variadic routines) makes frame bumping unsafe.
      if (formatOf(I.Op) == Format::Memory && I.Op != Opcode::Lda &&
          I.Op != Opcode::Ldah && I.Rb == RegSP && !WritesSP)
        continue;
      if (I.Op == Opcode::Lda && I.Ra == RegSP && I.Rb == RegSP)
        continue;
      // 'lda rX, d(sp)' (address of a local) is fine as long as the local
      // area below the original frame top is what it refers to.
      if (I.Op == Opcode::Lda && I.Rb == RegSP && I.Ra != RegSP &&
          I.Disp >= 0 && I.Disp < Frame)
        continue;
      return false;
    }
  }
  return true;
}

/// A routine can be inlined at its instrumentation sites when it is a
/// straight-line leaf: one block ending in ret, small, frameless, touching
/// only caller-save registers, and never reading a register it has not
/// itself defined (other than its arguments).
bool Engine::isInlinable(const Procedure &P, unsigned NumArgs) const {
  if (P.Blocks.size() != 1 || NumArgs > 6)
    return false;
  const std::vector<InstNode> &Body = P.Blocks[0].Insts;
  if (Body.empty() || !isReturn(Body.back().I.Op) ||
      Body.size() - 1 > Opts.InlineLimit)
    return false;

  uint32_t Defined = 0;
  for (unsigned J = 0; J < NumArgs; ++J)
    Defined |= 1u << (RegA0 + J);
  const uint32_t CallerSave = callerSavedMask();
  for (size_t I = 0; I + 1 < Body.size(); ++I) {
    const MInst &In = Body[I].I;
    if (isControlTransfer(In.Op) || In.Op == Opcode::Callsys ||
        In.Op == Opcode::Halt)
      return false;
    uint32_t Reads = readRegs(In);
    if ((Reads & (1u << RegSP)) || (Reads & ~(Defined | 0)) != 0)
      return false;
    uint32_t Writes = writtenRegs(In);
    if (Writes & ~CallerSave)
      return false;
    if (Writes & (1u << RegRA))
      return false;
    Defined |= Writes;
  }
  return true;
}

bool Engine::patchProcSaves(Procedure &P, uint32_t SaveMask) {
  SaveMask &= ~(1u << RegSP);
  if (!SaveMask)
    return true;
  int64_t Frame = 0;
  if (!isPatchable(P, Frame))
    return error("cannot patch register saves into analysis procedure '" +
                 P.Name + "' (no standard prologue)");

  std::vector<unsigned> Regs = maskToRegs(SaveMask);
  int64_t Extra = int64_t(alignTo(8 * Regs.size(), 16));
  if (Frame + Extra > 32000)
    return error("frame of analysis procedure '" + P.Name +
                 "' too large to bump");

  for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
    OBlock &B = P.Blocks[BI];
    std::vector<InstNode> NewInsts;
    for (size_t II = 0; II < B.Insts.size(); ++II) {
      InstNode N = B.Insts[II];
      MInst &I = N.I;
      bool Prologue = BI == 0 && II == 0;
      if (Prologue) {
        I.Disp = int32_t(-(Frame + Extra));
        NewInsts.push_back(N);
        // Save the extra registers into the bumped area [Frame, Frame+E).
        for (size_t K = 0; K < Regs.size(); ++K) {
          InstNode S;
          S.I = makeMem(Opcode::Stq, Regs[K], int32_t(Frame + 8 * int64_t(K)),
                        RegSP);
          NewInsts.push_back(S);
          ++Stats.SaveSlots;
        }
        continue;
      }
      if (I.Op == Opcode::Lda && I.Ra == RegSP && I.Rb == RegSP &&
          I.Disp > 0) {
        // Epilogue: restore, then pop the bumped frame.
        for (size_t K = Regs.size(); K-- > 0;) {
          InstNode L;
          L.I = makeMem(Opcode::Ldq, Regs[K], int32_t(Frame + 8 * int64_t(K)),
                        RegSP);
          NewInsts.push_back(L);
        }
        I.Disp = int32_t(Frame + Extra);
        NewInsts.push_back(N);
        continue;
      }
      if (formatOf(I.Op) == Format::Memory && I.Rb == RegSP &&
          I.Disp >= Frame) {
        // Incoming stack-argument access: shift past the bumped area.
        I.Disp += int32_t(Extra);
      }
      NewInsts.push_back(N);
    }
    B.Insts = std::move(NewInsts);
  }
  ++Stats.PatchedProcs;
  return true;
}

//===----------------------------------------------------------------------===//
// Wrapper routines
//===----------------------------------------------------------------------===//

std::string Engine::makeWrapper(const std::string &Target, uint32_t SaveMask,
                                unsigned NumArgs) {
  SaveMask &= ~(1u << RegRA);
  SaveMask &= ~(1u << RegSP);
  unsigned StackArgs = NumArgs > 6 ? NumArgs - 6 : 0;
  if (StackArgs)
    SaveMask |= 1u << RegAT; // the copy loop below clobbers at

  std::vector<unsigned> Regs = maskToRegs(SaveMask);
  int64_t OutBytes = 8 * int64_t(StackArgs);
  int64_t Frame =
      int64_t(alignTo(uint64_t(OutBytes + 8 * (1 + int64_t(Regs.size()))),
                      16));

  int TargetSym = analSymbol(Target);
  assert(TargetSym >= 0 && "wrapper target must exist");

  std::string Name = "__atom$wrap$" + Target;
  std::vector<InstNode> Seq;
  auto push = [&](const MInst &I) {
    InstNode N;
    N.I = I;
    Seq.push_back(N);
  };

  push(makeMem(Opcode::Lda, RegSP, int32_t(-Frame), RegSP));
  push(makeMem(Opcode::Stq, RegRA, int32_t(OutBytes), RegSP));
  for (size_t K = 0; K < Regs.size(); ++K) {
    push(makeMem(Opcode::Stq, Regs[K],
                 int32_t(OutBytes + 8 * (1 + int64_t(K))), RegSP));
    ++Stats.SaveSlots;
  }
  // Forward incoming stack arguments to the callee's expected location.
  for (unsigned J = 0; J < StackArgs; ++J) {
    push(makeMem(Opcode::Ldq, RegAT, int32_t(Frame + 8 * int64_t(J)), RegSP));
    push(makeMem(Opcode::Stq, RegAT, int32_t(8 * int64_t(J)), RegSP));
  }
  {
    InstNode Call;
    Call.I = makeBranch(Opcode::Bsr, RegRA, 0);
    Call.HasReloc = true;
    Call.RelKind = RelocKind::Br21;
    Call.Ref = {UnitTag::Analysis, TargetSym, 0};
    Seq.push_back(Call);
  }
  for (size_t K = Regs.size(); K-- > 0;)
    push(makeMem(Opcode::Ldq, Regs[K],
                 int32_t(OutBytes + 8 * (1 + int64_t(K))), RegSP));
  push(makeMem(Opcode::Ldq, RegRA, int32_t(OutBytes), RegSP));
  push(makeMem(Opcode::Lda, RegSP, int32_t(Frame), RegSP));
  push(makeJump(Opcode::Ret, RegZero, RegRA));

  // Register the wrapper as an analysis procedure with synthetic original
  // addresses (they never appear in the application's PC map).
  uint64_t Orig = FakePC;
  FakePC += 4 * Seq.size();
  for (size_t K = 0; K < Seq.size(); ++K)
    Seq[K].OrigPC = Orig + 4 * K;

  Symbol Sym;
  Sym.Name = Name;
  Sym.Section = SymSection::Text;
  Sym.Value = Orig;
  Sym.Global = true;
  Sym.IsProc = true;
  Sym.Size = 4 * Seq.size();
  int SymIdx = Anal.addSymbol(Sym);

  Procedure W;
  W.Name = Name;
  W.SymIndex = SymIdx;
  W.OrigStart = Orig;
  W.Blocks.emplace_back();
  W.Blocks[0].OrigPC = Orig;
  W.Blocks[0].Insts = std::move(Seq);
  Anal.ProcByName[Name] = int(Anal.Procs.size());
  Anal.Procs.push_back(std::move(W));
  ++Stats.Wrappers;
  return Name;
}

//===----------------------------------------------------------------------===//
// Save-strategy wiring
//===----------------------------------------------------------------------===//

bool Engine::setupCallTargets(const InstrumentationContext &Ctx) {
  (void)Ctx;
  const uint32_t CallerSave = callerSavedMask();
  const uint32_t TMask = scratchMask();

  // Which analysis procedures are called from inside the analysis unit
  // (those cannot have their prologue patched with a v0 restore).
  std::set<std::string> InternallyCalled;
  for (const auto &[Caller, Callees] : buildCallGraph())
    for (const std::string &C : Callees)
      InternallyCalled.insert(C);

  // In Distributed mode, give every patchable analysis procedure its own
  // scratch-register saves; collect the unpatchable remainder per entry.
  std::map<std::string, uint32_t> HoistedT;
  if (Opts.Strategy == AtomOptions::SaveStrategy::Distributed) {
    auto CG = buildCallGraph();
    std::map<std::string, bool> Patchable;
    std::map<std::string, uint32_t> DirectT;
    for (Procedure &P : Anal.Procs) {
      int64_t Frame;
      Patchable[P.Name] = isPatchable(P, Frame);
      DirectT[P.Name] =
          DF.Summaries[size_t(Anal.ProcByName[P.Name])].DirectMod & TMask;
    }
    // Per entry procedure, the scratch registers of unpatchable reachable
    // procedures must still be saved up front (in its wrapper).
    for (auto &[Name, TI] : Targets) {
      std::set<std::string> Seen;
      std::vector<std::string> Work = {Name};
      uint32_t Hoist = 0;
      while (!Work.empty()) {
        std::string N = Work.back();
        Work.pop_back();
        if (!Seen.insert(N).second)
          continue;
        if (!Patchable.count(N))
          continue; // out-of-unit name; DataFlow was conservative already
        if (!Patchable[N])
          Hoist |= DirectT[N];
        for (const std::string &C : CG[N])
          Work.push_back(C);
      }
      HoistedT[Name] = Hoist;
    }
    for (Procedure &P : Anal.Procs) {
      int64_t Frame;
      uint32_t Set = DirectT[P.Name];
      if (Set && isPatchable(P, Frame))
        if (!patchProcSaves(P, Set))
          return false;
    }
  }

  for (auto &[Name, TI] : Targets) {
    const ProcSummary &S = DF.forProc(Anal, Name);
    unsigned K = std::min<unsigned>(TI.NumProtoArgs, 6);

    if (Opts.InlineAnalysis) {
      int Idx = Anal.ProcByName[Name];
      if (Opts.BranchyInline) {
        // The branching inliner subsumes the straight-line check: leaf
        // bodies come out of planInline as a plan without branches.
        auto Plan = std::make_shared<probeopt::InlinePlan>();
        probeopt::Reject R = probeopt::planInline(
            Anal, Idx, TI.NumProtoArgs, Opts.InlineLimit, DF, *Plan);
        if (R == probeopt::Reject::None) {
          TI.Plan = std::move(Plan);
          TI.TransMod = S.TransMod & callerSavedMask();
          TI.CallSymbol = Name;
          continue;
        }
        ++Stats.ProbeRejects[unsigned(R)];
      } else if (isInlinable(Anal.Procs[size_t(Idx)], TI.NumProtoArgs)) {
        TI.InlineProcIdx = Idx;
        TI.TransMod = S.TransMod & callerSavedMask();
        TI.CallSymbol = Name;
        continue;
      }
    }
    if (Opts.GuardHoist) {
      // Not inlinable: see if at least the leading test-and-skip
      // predicate can be hoisted to the site.
      auto G = std::make_shared<probeopt::GuardPlan>();
      if (probeopt::planGuard(Anal.Procs[size_t(Anal.ProcByName[Name])],
                              *G) == probeopt::Reject::None)
        TI.Guard = std::move(G);
    }
    if (Opts.ElideDeadArgs &&
        Opts.Strategy == AtomOptions::SaveStrategy::SiteLiveness) {
      // The handler's USE summary tells the site which argument registers
      // the out-of-line call can skip staging (and saving) entirely. Only
      // SiteLiveness composes: the other strategies size their wrapper or
      // prologue saves assuming every argument register was staged.
      if (!AnalUseSummaries)
        AnalUseSummaries = std::make_unique<UseDefSummaries>(Anal);
      TI.ArgsUsed = AnalUseSummaries->useOf(Name);
    }
    uint32_t SiteSaved = 1u << RegRA;
    for (unsigned J = 0; J < K; ++J)
      SiteSaved |= 1u << (RegA0 + J);

    uint32_t Full = (S.TransMod & CallerSave) & ~SiteSaved;
    TI.TransMod = S.TransMod & CallerSave;

    switch (Opts.Strategy) {
    case AtomOptions::SaveStrategy::SaveAll:
      TI.CallSymbol = makeWrapper(Name, CallerSave & ~SiteSaved,
                                  TI.NumProtoArgs);
      break;
    case AtomOptions::SaveStrategy::WrapperSummary:
      TI.CallSymbol = makeWrapper(Name, Full, TI.NumProtoArgs);
      break;
    case AtomOptions::SaveStrategy::DirectInline: {
      Procedure *P = Anal.findProc(Name);
      int64_t Frame;
      if (InternallyCalled.count(Name) || !isPatchable(*P, Frame) ||
          TI.NumProtoArgs > 6) {
        // Patching is unsafe (v0 restore would corrupt internal callers)
        // or impossible (no standard prologue, e.g. hand-written leaf
        // routines). Keep the direct call and save the summary set at the
        // site instead — the code-expansion tradeoff the paper's wrapper
        // mechanism exists to avoid.
        TI.CallSymbol = Name;
        TI.SiteExtraSaves = Full;
      } else {
        if (!patchProcSaves(*P, Full))
          return false;
        TI.CallSymbol = Name;
      }
      break;
    }
    case AtomOptions::SaveStrategy::Distributed: {
      // Scratch registers are handled by the per-procedure patches; the
      // wrapper saves only the non-scratch portion plus hoisted scratch.
      uint32_t Set = (Full & ~TMask) | (HoistedT[Name] & ~SiteSaved);
      TI.CallSymbol = makeWrapper(Name, Set, TI.NumProtoArgs);
      break;
    }
    case AtomOptions::SaveStrategy::SiteLiveness:
      TI.CallSymbol = Name; // sites call directly and save live regs
      break;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Call-sequence synthesis
//===----------------------------------------------------------------------===//

std::vector<InstNode> Engine::genCallSeqCore(const Action &A,
                                             const InstNode *Site,
                                             uint32_t LiveMask) {
  const TargetInfo &TI = Targets.at(A.Callee);
  unsigned N = unsigned(A.Args.size());
  unsigned K = std::min<unsigned>(N, 6);
  unsigned StackArgs = N - K;
  bool UseLive = Opts.Strategy == AtomOptions::SaveStrategy::SiteLiveness;

  const Procedure *InlineBody =
      TI.InlineProcIdx >= 0 ? &Anal.Procs[size_t(TI.InlineProcIdx)]
                            : nullptr;
  const probeopt::InlinePlan *Plan = TI.Plan.get();

  // Per-argument disposition. Default: stage everything. With a body plan
  // (or, for out-of-line calls, the handler's USE summary) arguments the
  // handler never reads are elided, and small-constant actuals feeding
  // only operate Rb operands are folded into the body copy as literals.
  uint32_t ArgStage = 0;
  int FoldVal[6] = {-1, -1, -1, -1, -1, -1};
  for (unsigned J = 0; J < K; ++J) {
    if (Plan && Opts.ElideDeadArgs) {
      if (!(Plan->UsedArgs >> J & 1)) {
        ++Stats.ProbeArgsElided;
        continue;
      }
      const CallArg &CA = A.Args[J];
      if ((Plan->FoldableArgs >> J & 1) && CA.K == CallArg::ConstI64 &&
          CA.Value >= 0 && CA.Value <= 255) {
        FoldVal[J] = int(CA.Value);
        ++Stats.ProbeConstsFolded;
        continue;
      }
    } else if (!Plan && !InlineBody &&
               !(TI.ArgsUsed & (1u << (RegA0 + J)))) {
      ++Stats.ProbeArgsElided;
      continue;
    }
    ArgStage |= 1u << (RegA0 + J);
  }

  // Site save set: ra, the argument registers we will clobber, at for
  // stack-argument staging, pv when calling via jsr, and — in SiteLiveness
  // mode — every live register the analysis may modify. Inlined bodies
  // need no ra save (there is no call), only their own scratch registers;
  // planned bodies save only what the body itself writes (cold calls'
  // effects are bracketed per call below).
  bool IsInline = InlineBody || Plan;
  uint32_t SaveMask = IsInline ? 0 : (1u << RegRA);
  SaveMask |= ArgStage;
  if (StackArgs)
    SaveMask |= 1u << RegAT;
  if (Opts.ForceJsr && !IsInline)
    SaveMask |= 1u << RegPV;
  if (InlineBody)
    SaveMask |= TI.TransMod;
  if (Plan)
    SaveMask |= Plan->BodyMod & (UseLive ? LiveMask : ~0u);
  else if (UseLive)
    SaveMask |= TI.TransMod & LiveMask;
  SaveMask |= TI.SiteExtraSaves;
  SaveMask &= ~(1u << RegZero);
  SaveMask &= ~(1u << RegSP);
  if (InlineBody)
    SaveMask &= ~(1u << RegRA);

  std::vector<unsigned> Saves = maskToRegs(SaveMask);

  // Bracket saves for cold calls inside a planned body: per call, the
  // registers the callee may clobber (plus ra) that the site has not
  // already saved. They get their own slots — distinct from SlotOf, which
  // argument staging may read — and are filled only on the cold path.
  uint32_t BracketUnion = 0;
  std::vector<uint32_t> BracketOf;
  if (Plan) {
    BracketOf.resize(Plan->Elems.size(), 0);
    for (size_t I = 0; I < Plan->Elems.size(); ++I) {
      const probeopt::InlineElem &E = Plan->Elems[I];
      if (!E.IsCall)
        continue;
      uint32_t M = (E.CalleeTransMod | (1u << RegRA)) & callerSavedMask() &
                   ~SaveMask & ~(1u << RegZero);
      if (E.RaProtected) // body's own spill idiom preserves ra
        M &= ~(1u << RegRA);
      if (UseLive)
        M &= LiveMask;
      BracketOf[I] = M;
      BracketUnion |= M;
    }
  }
  std::vector<unsigned> BracketRegs = maskToRegs(BracketUnion);

  int64_t OutBytes = 8 * int64_t(StackArgs);
  int64_t Frame = int64_t(alignTo(
      uint64_t(OutBytes + 8 * int64_t(Saves.size() + BracketRegs.size())),
      16));

  int64_t SlotOf[NumRegs], BracketSlot[NumRegs];
  for (unsigned R = 0; R < NumRegs; ++R)
    SlotOf[R] = BracketSlot[R] = -1;
  for (size_t I = 0; I < Saves.size(); ++I)
    SlotOf[Saves[I]] = OutBytes + 8 * int64_t(I);
  for (size_t I = 0; I < BracketRegs.size(); ++I)
    BracketSlot[BracketRegs[I]] =
        OutBytes + 8 * int64_t(Saves.size() + I);

  std::vector<InstNode> Seq;
  auto push = [&](const MInst &I) {
    InstNode Node;
    Node.I = I;
    Seq.push_back(Node);
  };

  if (Frame)
    push(makeMem(Opcode::Lda, RegSP, int32_t(-Frame), RegSP));
  for (unsigned R : Saves)
    push(makeMem(Opcode::Stq, R, int32_t(SlotOf[R]), RegSP));
  Stats.SaveSlots += unsigned(Saves.size());

  // Loads the application's value of register \p Src into \p Dst
  // (reading from the save area when we already clobbered it, and
  // compensating sp for our own frame).
  auto loadSource = [&](unsigned Src, unsigned Dst) {
    if (Src == RegSP) {
      push(makeMem(Opcode::Lda, Dst, int32_t(Frame), RegSP));
      return;
    }
    if (Src == RegZero) {
      push(makeMove(RegZero, Dst));
      return;
    }
    if (SlotOf[Src] >= 0) {
      push(makeMem(Opcode::Ldq, Dst, int32_t(SlotOf[Src]), RegSP));
      return;
    }
    if (Src != Dst)
      push(makeMove(Src, Dst));
  };

  auto setupArg = [&](const CallArg &CA, unsigned Dst) {
    switch (CA.K) {
    case CallArg::ConstI64: {
      std::vector<MInst> Consts;
      synthesizeConstant(CA.Value, Dst, Consts);
      for (const MInst &I : Consts)
        push(I);
      break;
    }
    case CallArg::Regv:
      loadSource(CA.Reg, Dst);
      break;
    case CallArg::EffAddr: {
      assert(Site && isMemRef(Site->I.Op) && "validated by the API");
      unsigned Base = Site->I.Rb;
      // Fuse base+displacement into one lda when the base register still
      // holds the application value (not clobbered by us, not sp).
      if (Base != RegSP && SlotOf[Base] < 0) {
        push(makeMem(Opcode::Lda, Dst, Site->I.Disp, Base));
        break;
      }
      loadSource(Base, Dst);
      if (Site->I.Disp != 0)
        push(makeMem(Opcode::Lda, Dst, Site->I.Disp, Dst));
      break;
    }
    case CallArg::BrCond: {
      assert(Site && isCondBranch(Site->I.Op) && "validated by the API");
      // Evaluate the branch condition directly from the source register
      // when it still holds the application value; otherwise reload it.
      unsigned S = Site->I.Ra;
      if (S == RegSP || SlotOf[S] >= 0) {
        loadSource(S, Dst);
        S = Dst;
      }
      switch (Site->I.Op) {
      case Opcode::Beq:
        push(makeOpLit(Opcode::Cmpeq, S, 0, Dst));
        break;
      case Opcode::Bne:
        push(makeOp(Opcode::Cmpult, RegZero, S, Dst));
        break;
      case Opcode::Blt:
        push(makeOpLit(Opcode::Cmplt, S, 0, Dst));
        break;
      case Opcode::Ble:
        push(makeOpLit(Opcode::Cmple, S, 0, Dst));
        break;
      case Opcode::Bgt:
        push(makeOp(Opcode::Cmplt, RegZero, S, Dst));
        break;
      case Opcode::Bge:
        push(makeOp(Opcode::Cmple, RegZero, S, Dst));
        break;
      case Opcode::Blbs:
        push(makeOpLit(Opcode::And, S, 1, Dst));
        break;
      case Opcode::Blbc:
        push(makeOpLit(Opcode::And, S, 1, Dst));
        push(makeOpLit(Opcode::Xor, Dst, 1, Dst));
        break;
      default:
        // Unreachable through the public API (BrCond args are validated
        // against the site), but fail with a diagnostic rather than
        // aborting the host if a caller slips one through.
        Failed = true;
        Diags.error(0, "BrCond argument at a non-conditional-branch site");
        break;
      }
      break;
    }
    }
  };

  for (unsigned J = 0; J < K; ++J)
    if (ArgStage & (1u << (RegA0 + J)))
      setupArg(A.Args[J], RegA0 + J);
  for (unsigned J = K; J < N; ++J) {
    setupArg(A.Args[J], RegAT);
    push(makeMem(Opcode::Stq, RegAT, int32_t(8 * int64_t(J - K)), RegSP));
  }

  if (Plan) {
    // Copy the planned body. Two passes: assign every element its
    // position in the emitted sequence (cold calls expand to their
    // brackets, the final ret disappears, other rets become branches past
    // the copy), then emit with intra-body branches as raw forward
    // displacements — the sequence lands contiguously in one block, so
    // layout writes Disp through verbatim.
    const std::vector<probeopt::InlineElem> &Elems = Plan->Elems;
    std::vector<int> Pos(Elems.size(), 0);
    int P = 0;
    for (size_t I = 0; I < Elems.size(); ++I) {
      Pos[I] = P;
      const probeopt::InlineElem &E = Elems[I];
      if (E.IsRet)
        P += I + 1 == Elems.size() ? 0 : 1;
      else if (E.IsCall)
        P += 1 + 2 * int(maskToRegs(BracketOf[I]).size());
      else
        P += 1;
    }
    const int EndPos = P;
    for (size_t I = 0; I < Elems.size(); ++I) {
      const probeopt::InlineElem &E = Elems[I];
      if (E.IsRet) {
        if (I + 1 < Elems.size())
          push(makeBranch(Opcode::Br, RegZero, EndPos - (Pos[I] + 1)));
        continue;
      }
      if (E.IsCall) {
        std::vector<unsigned> BR = maskToRegs(BracketOf[I]);
        for (unsigned R : BR)
          push(makeMem(Opcode::Stq, R, int32_t(BracketSlot[R]), RegSP));
        Seq.push_back(E.N); // the bsr, relocation intact
        for (size_t Z = BR.size(); Z-- > 0;)
          push(makeMem(Opcode::Ldq, BR[Z], int32_t(BracketSlot[BR[Z]]),
                       RegSP));
        Stats.SaveSlots += unsigned(BR.size());
        continue;
      }
      InstNode C = E.N;
      if (E.BranchTo >= 0)
        C.I.Disp = Pos[size_t(E.BranchTo)] - (Pos[I] + 1);
      for (unsigned J = 0; J < K; ++J)
        if (FoldVal[J] >= 0 && formatOf(C.I.Op) == Format::Operate &&
            !C.I.IsLit && C.I.Rb == RegA0 + J) {
          C.I.IsLit = true;
          C.I.Lit = uint8_t(FoldVal[J]);
        }
      Seq.push_back(std::move(C));
    }
    for (size_t I = Saves.size(); I-- > 0;)
      push(makeMem(Opcode::Ldq, Saves[I], int32_t(SlotOf[Saves[I]]),
                   RegSP));
    if (Frame)
      push(makeMem(Opcode::Lda, RegSP, int32_t(Frame), RegSP));
    ++Stats.ProbeInlinedSites;
    Stats.InsertedInsts += unsigned(Seq.size());
    return Seq;
  }

  if (InlineBody) {
    // Copy the straight-line body (minus the ret) into the site.
    const std::vector<InstNode> &Body = InlineBody->Blocks[0].Insts;
    for (size_t I = 0; I + 1 < Body.size(); ++I) {
      InstNode Copy = Body[I];
      Copy.OrigPC = 0; // inserted code: not part of the app's PC map
      Copy.Before.clear();
      Copy.After.clear();
      Seq.push_back(std::move(Copy));
    }
    for (size_t I = Saves.size(); I-- > 0;)
      push(makeMem(Opcode::Ldq, Saves[I], int32_t(SlotOf[Saves[I]]),
                   RegSP));
    if (Frame)
      push(makeMem(Opcode::Lda, RegSP, int32_t(Frame), RegSP));
    Stats.InsertedInsts += unsigned(Seq.size());
    return Seq;
  }

  int TargetSym = analSymbol(TI.CallSymbol);
  assert(TargetSym >= 0 && "call target symbol missing");
  if (Opts.ForceJsr) {
    InstNode Hi, Lo;
    Hi.I = makeMem(Opcode::Ldah, RegPV, 0, RegZero);
    Hi.HasReloc = true;
    Hi.RelKind = RelocKind::Hi16;
    Hi.Ref = {UnitTag::Analysis, TargetSym, 0};
    Lo.I = makeMem(Opcode::Lda, RegPV, 0, RegPV);
    Lo.HasReloc = true;
    Lo.RelKind = RelocKind::Lo16;
    Lo.Ref = {UnitTag::Analysis, TargetSym, 0};
    Seq.push_back(Hi);
    Seq.push_back(Lo);
    push(makeJump(Opcode::Jsr, RegRA, RegPV));
  } else {
    InstNode Call;
    Call.I = makeBranch(Opcode::Bsr, RegRA, 0);
    Call.HasReloc = true;
    Call.RelKind = RelocKind::Br21;
    Call.Ref = {UnitTag::Analysis, TargetSym, 0};
    Seq.push_back(Call);
  }

  for (size_t I = Saves.size(); I-- > 0;)
    push(makeMem(Opcode::Ldq, Saves[I], int32_t(SlotOf[Saves[I]]), RegSP));
  if (Frame)
    push(makeMem(Opcode::Lda, RegSP, int32_t(Frame), RegSP));

  Stats.InsertedInsts += unsigned(Seq.size());
  return Seq;
}

std::vector<InstNode> Engine::genCallSeq(const Action &A,
                                         const InstNode *Site,
                                         uint32_t LiveMask) {
  const TargetInfo &TI = Targets.at(A.Callee);
  if (!TI.Guard)
    return genCallSeqCore(A, Site, LiveMask);

  // Guard hoisting: the site evaluates only the handler's leading
  // predicate and branches over the entire call sequence when it takes
  // the handler's trivial-return side. Every register the predicate
  // writes is saved and restored on both paths regardless of liveness: a
  // later instrumentation point may pass a dead register's application
  // value as a Regv argument, and that value must match O0's.
  const probeopt::GuardPlan &G = *TI.Guard;
  std::vector<InstNode> Inner = genCallSeqCore(A, Site, LiveMask);

  std::vector<unsigned> PSaves = maskToRegs(G.PredMod & ~(1u << RegZero));
  int64_t GF = int64_t(alignTo(uint64_t(8 * PSaves.size()), 16));

  std::vector<InstNode> Seq;
  auto push = [&](const MInst &I) {
    InstNode Node;
    Node.I = I;
    Seq.push_back(Node);
  };

  if (GF)
    push(makeMem(Opcode::Lda, RegSP, int32_t(-GF), RegSP));
  for (size_t I = 0; I < PSaves.size(); ++I)
    push(makeMem(Opcode::Stq, PSaves[I], int32_t(8 * int64_t(I)), RegSP));
  Stats.SaveSlots += unsigned(PSaves.size());
  for (const InstNode &N : G.Pred)
    Seq.push_back(N);

  MInst Br = G.Branch;
  if (!G.SkipOnTaken)
    Br.Op = probeopt::invertCondBranch(Br.Op);
  const int RestoreLen = int(PSaves.size()) + (GF ? 1 : 0);
  if (RestoreLen == 0) {
    // Nothing to unwind: skip straight past the call sequence.
    Br.Disp = int32_t(Inner.size());
    push(Br);
    for (InstNode &N : Inner)
      Seq.push_back(std::move(N));
  } else {
    // branch -> SKIP | restores, call seq, br -> END | SKIP: restores END:
    Br.Disp = int32_t(RestoreLen + int(Inner.size()) + 1);
    push(Br);
    for (size_t I = PSaves.size(); I-- > 0;)
      push(makeMem(Opcode::Ldq, PSaves[I], int32_t(8 * int64_t(I)), RegSP));
    push(makeMem(Opcode::Lda, RegSP, int32_t(GF), RegSP));
    for (InstNode &N : Inner)
      Seq.push_back(std::move(N));
    push(makeBranch(Opcode::Br, RegZero, RestoreLen));
    for (size_t I = PSaves.size(); I-- > 0;)
      push(makeMem(Opcode::Ldq, PSaves[I], int32_t(8 * int64_t(I)), RegSP));
    push(makeMem(Opcode::Lda, RegSP, int32_t(GF), RegSP));
  }
  ++Stats.ProbeGuardedSites;
  Stats.InsertedInsts += unsigned(Seq.size() - Inner.size());
  return Seq;
}

//===----------------------------------------------------------------------===//
// Sequence insertion
//===----------------------------------------------------------------------===//

bool Engine::insertSequences(const InstrumentationContext &Ctx) {
  (void)Ctx;
  bool UseLive = Opts.Strategy == AtomOptions::SaveStrategy::SiteLiveness;

  Procedure *StartProc = App.findProc("_start");
  Procedure *ExitProc = App.findProc("__exit");
  if (!App.ProgramBefore.empty() && !StartProc)
    return error("ProgramBefore instrumentation requires a _start "
                 "procedure in the application");
  if (!App.ProgramAfter.empty() && !ExitProc)
    return error("ProgramAfter instrumentation requires the runtime's "
                 "__exit procedure in the application");

  for (Procedure &P : App.Procs) {
    // Entry actions for this procedure, in execution order.
    std::vector<Action> EntryActions;
    if (&P == StartProc)
      for (const Action &A : App.ProgramBefore)
        EntryActions.push_back(A);
    if (&P == ExitProc)
      for (const Action &A : App.ProgramAfter)
        EntryActions.push_back(A);
    for (const Action &A : P.Before)
      EntryActions.push_back(A);

    bool AnyWork = !EntryActions.empty() || !P.After.empty();
    if (!AnyWork)
      for (const OBlock &B : P.Blocks) {
        if (!B.Before.empty() || !B.After.empty() || !B.EdgeActions.empty())
          AnyWork = true;
        for (const InstNode &I : B.Insts)
          if (!I.Before.empty() || !I.After.empty())
            AnyWork = true;
        if (AnyWork)
          break;
      }
    if (!AnyWork)
      continue;

    std::unique_ptr<LivenessInfo> Live;
    if (UseLive) {
      // Interprocedural USE/MOD summaries over the application, computed
      // once (paper: "OM can do interprocedural live variable analysis").
      if (!AppSummaries)
        AppSummaries = std::make_unique<UseDefSummaries>(App);
      Live = std::make_unique<LivenessInfo>(P, &App, AppSummaries.get());
    }

    // Trampoline blocks created for taken-edge instrumentation; appended
    // to the procedure after the rebuild so block indices stay stable.
    std::vector<OBlock> Pending;
    const size_t NumBlocks = P.Blocks.size();

    for (size_t BI = 0; BI < NumBlocks; ++BI) {
      OBlock &B = P.Blocks[BI];
      std::vector<InstNode> NewInsts;
      auto appendSeq = [&](const Action &A, const InstNode *Site,
                           unsigned InstIdx) {
        uint32_t LiveMask = ~0u;
        if (UseLive)
          LiveMask = Live->liveBefore(unsigned(BI), InstIdx);
        std::vector<InstNode> Seq = genCallSeq(A, Site, LiveMask);
        for (InstNode &I : Seq)
          NewInsts.push_back(std::move(I));
      };

      if (BI == 0)
        for (const Action &A : EntryActions)
          appendSeq(A, nullptr, 0);
      for (const Action &A : B.Before)
        appendSeq(A, nullptr, 0);

      // Classify edge actions. For a conditional branch, successor 0 is
      // the taken target (trampoline) and successor 1 the fallthrough
      // (code after the branch). For an unconditional br the single edge
      // is always taken: the call goes right before the branch. For
      // fallthrough-only blocks the single edge is the block end.
      std::vector<const Action *> TakenEdge, FallEdge;
      const InstNode *Term = B.terminator();
      bool CondTerm = Term && isCondBranch(Term->I.Op);
      bool UncondTerm = Term && isUncondBranch(Term->I.Op);
      for (const auto &[SuccIdx, A] : B.EdgeActions) {
        if (CondTerm && SuccIdx == 0)
          TakenEdge.push_back(&A);
        else if (UncondTerm && SuccIdx == 0)
          FallEdge.push_back(&A); // emitted before the br: always taken
        else
          FallEdge.push_back(&A);
      }

      for (size_t II = 0; II < B.Insts.size(); ++II) {
        InstNode &Node = B.Insts[II];
        bool IsTerm = isControlTransfer(Node.I.Op) && !isCall(Node.I.Op);
        bool IsLast = II + 1 == B.Insts.size();

        if (IsLast && IsTerm) {
          for (const Action &A : B.After)
            appendSeq(A, nullptr, unsigned(II));
          if (isReturn(Node.I.Op))
            for (const Action &A : P.After)
              appendSeq(A, nullptr, unsigned(II));
          // Unconditional-branch edge calls run right before the branch.
          if (UncondTerm)
            for (const Action *A : FallEdge)
              appendSeq(*A, nullptr, unsigned(II));
          // Taken-edge calls on a conditional branch go through a
          // trampoline block so the fallthrough path never sees them.
          if (CondTerm && !TakenEdge.empty()) {
            OBlock Tramp;
            std::vector<InstNode> TrampInsts;
            for (const Action *A : TakenEdge) {
              std::vector<InstNode> Seq = genCallSeq(*A, nullptr, ~0u);
              for (InstNode &TI : Seq)
                TrampInsts.push_back(std::move(TI));
            }
            InstNode Br;
            Br.I = makeBranch(Opcode::Br, RegZero, 0);
            Br.BranchBlock = Node.BranchBlock;
            TrampInsts.push_back(std::move(Br));
            Tramp.Insts = std::move(TrampInsts);
            int TrampIdx = int(NumBlocks + Pending.size());
            Pending.push_back(std::move(Tramp));
            Node.BranchBlock = TrampIdx;
            ++Stats.InsertedInsts; // the trampoline's br
          }
        }
        for (const Action &A : Node.Before)
          appendSeq(A, &Node, unsigned(II));

        InstNode SiteVal = Node; // stable copy for After-action synthesis
        SiteVal.Before.clear();
        SiteVal.After.clear();
        std::vector<Action> AfterActions = std::move(Node.After);
        NewInsts.push_back(SiteVal);
        for (const Action &A : AfterActions)
          appendSeq(A, &SiteVal, unsigned(II + 1 < B.Insts.size() ? II + 1
                                                                  : II));
        if (IsLast && !IsTerm)
          for (const Action &A : B.After)
            appendSeq(A, nullptr, unsigned(II));
        if (IsLast && !UncondTerm)
          // Fallthrough-edge calls run after everything else in the block
          // (after a conditional terminator they execute only when the
          // branch falls through).
          for (const Action *A : FallEdge)
            appendSeq(*A, nullptr, unsigned(II));
      }
      B.Before.clear();
      B.After.clear();
      B.EdgeActions.clear();
      B.Insts = std::move(NewInsts);
    }
    for (OBlock &T : Pending)
      P.Blocks.push_back(std::move(T));
    P.Before.clear();
    P.After.clear();
  }
  App.ProgramBefore.clear();
  App.ProgramAfter.clear();
  return true;
}

//===----------------------------------------------------------------------===//
// Heap linking (the two sbrks, paper §4)
//===----------------------------------------------------------------------===//

bool Engine::linkHeaps() {
  uint64_t AppHeapStart =
      alignTo(App.DataStart + App.Data.size() + App.BssSize, PageSize);

  // Statically initialize the application's heap-break cell so analysis
  // routines can allocate in ProgramBefore hooks, which run before the
  // application's own _start initialization (which is conditional and
  // therefore idempotent).
  int AppCell = -1;
  for (size_t I = 0; I < App.Symbols.size(); ++I)
    if (App.Symbols[I].Name == "__heap_break" &&
        App.Symbols[I].Section == SymSection::Data) {
      AppCell = int(I);
      break;
    }
  if (AppCell >= 0) {
    uint64_t Off = App.Symbols[size_t(AppCell)].Value - App.DataStart;
    if (Off + 8 <= App.Data.size())
      write64(App.Data, Off, AppHeapStart);
  }

  // Analysis-side cell.
  int AnalCell = -1, AnalHeapStart = -1;
  for (size_t I = 0; I < Anal.Symbols.size(); ++I) {
    if (Anal.Symbols[I].Name == "__heap_break" &&
        Anal.Symbols[I].Section == SymSection::Data)
      AnalCell = int(I);
    if (Anal.Symbols[I].Name == "__heap_start" &&
        Anal.Symbols[I].Section == SymSection::Undefined)
      AnalHeapStart = int(I);
  }

  if (Opts.AnalysisHeapOffset == 0) {
    // Method 1 (default): link the two sbrks — both bump the same cell, so
    // each starts where the other left off.
    if (AnalCell >= 0) {
      if (AppCell < 0)
        return error("analysis routines use the heap but the application "
                     "has no __heap_break cell (link it with the runtime)");
      Symbol &S = Anal.Symbols[size_t(AnalCell)];
      S.Section = SymSection::Absolute;
      S.Value = App.Symbols[size_t(AppCell)].Value;
    }
    if (AnalHeapStart >= 0) {
      Symbol &S = Anal.Symbols[size_t(AnalHeapStart)];
      S.Section = SymSection::Absolute;
      S.Value = AppHeapStart;
    }
    return true;
  }

  // Method 2: partition the heap. The application keeps its exact heap
  // addresses; the analysis heap starts at a user-supplied offset. As in
  // the paper, there is no runtime check that the application heap does
  // not grow into the analysis heap.
  uint64_t AnalysisHeap = AppHeapStart + Opts.AnalysisHeapOffset;
  if (AnalCell >= 0) {
    uint64_t Off = Anal.Symbols[size_t(AnalCell)].Value;
    if (Off + 8 <= Anal.Data.size())
      write64(Anal.Data, Off, AnalysisHeap);
  }
  if (AnalHeapStart >= 0) {
    Symbol &S = Anal.Symbols[size_t(AnalHeapStart)];
    S.Section = SymSection::Absolute;
    S.Value = AnalysisHeap;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool Engine::run(
    const std::function<void(InstrumentationContext &)> &InstrumentFn,
    const std::vector<ObjectModule> &AnalysisModules,
    InstrumentedProgram &Out) {
  {
    obs::Span S("lift");
    if (Reuse && Reuse->LiftedApp)
      App = *Reuse->LiftedApp; // deep copy; the cached unit stays pristine
    else if (!liftExecutable(AppExe, App, Diags))
      return false;
  }
  {
    obs::Span S("link-analysis");
    if (Reuse && Reuse->AnalysisUnit)
      Anal = *Reuse->AnalysisUnit;
    else if (!prepareAnalysisUnit(AnalysisModules))
      return false;
  }

  InstrumentationContext Ctx(App);
  {
    obs::Span S("instrument");
    InstrumentFn(Ctx);
    if (Ctx.hasErrors()) {
      for (const std::string &E : Ctx.errors())
        Diags.error(0, E);
      return false;
    }
    Stats.Points = Ctx.pointCount();
  }

  {
    obs::Span S("plan");
    if (!resolveTargets(Ctx))
      return false;

    if (Opts.StripUnreachableAnalysis)
      stripUnreachable(Ctx.referencedProcs());
  }

  {
    obs::Span S("rename");
    if (Opts.RenameAnalysisRegs)
      renameScratchRegs(Anal);
  }

  {
    obs::Span S("dataflow");
    DF = computeDataFlow(Anal);
  }

  {
    obs::Span S("setup-calls");
    if (!setupCallTargets(Ctx))
      return false;
    Stats.AnalysisProcs = unsigned(Anal.Procs.size());
  }

  {
    obs::Span S("insert");
    if (!insertSequences(Ctx) || Failed)
      return false;
  }
  {
    obs::Span S("link-heaps");
    if (!linkHeaps())
      return false;
  }

  {
    obs::Span S("layout");
    if (!layoutProgram(App, &Anal, Out.Exe, Out.Layout, Diags))
      return false;
  }
  // Embed the new->old PC map so loaders can translate fault PCs back to
  // pristine addresses (and recognize the executable as instrumented).
  Out.Exe.PCMap = Out.Layout.NewToOldPC;
  Out.Stats = Stats;
  return true;
}

} // namespace

const char *atom::optPresetName(AtomOptions::OptPreset P) {
  switch (P) {
  case AtomOptions::OptPreset::Default:
    return "default";
  case AtomOptions::OptPreset::O0:
    return "O0";
  case AtomOptions::OptPreset::O1:
    return "O1";
  case AtomOptions::OptPreset::O2:
    return "O2";
  }
  return "default";
}

bool atom::parseOptPreset(const std::string &Name,
                          AtomOptions::OptPreset &Out) {
  if (Name == "O0")
    Out = AtomOptions::OptPreset::O0;
  else if (Name == "O1")
    Out = AtomOptions::OptPreset::O1;
  else if (Name == "O2")
    Out = AtomOptions::OptPreset::O2;
  else if (Name == "default")
    Out = AtomOptions::OptPreset::Default;
  else
    return false;
  return true;
}

AtomOptions atom::resolveAtomOptions(const AtomOptions &O) {
  AtomOptions R = O;
  AtomOptions::OptPreset P = O.Opt;
  bool FromEnv = false;
  if (P == AtomOptions::OptPreset::Default) {
    // CI sweeps re-run whole suites under ATOM_OPT=O2; an explicitly
    // configured preset always wins over the environment.
    const char *Env = std::getenv("ATOM_OPT");
    if (!Env || !parseOptPreset(Env, P) ||
        P == AtomOptions::OptPreset::Default)
      return R;
    FromEnv = true;
  }
  R.Opt = P;
  switch (P) {
  case AtomOptions::OptPreset::Default:
    break;
  case AtomOptions::OptPreset::O0:
    R.InlineAnalysis = false;
    R.BranchyInline = false;
    R.GuardHoist = false;
    R.ElideDeadArgs = false;
    break;
  case AtomOptions::OptPreset::O1:
    R.InlineAnalysis = true;
    R.BranchyInline = false;
    R.GuardHoist = false;
    R.ElideDeadArgs = false;
    break;
  case AtomOptions::OptPreset::O2:
    R.InlineAnalysis = true;
    R.BranchyInline = true;
    R.GuardHoist = true;
    R.ElideDeadArgs = true;
    R.InlineLimit = std::max(R.InlineLimit, 48u);
    // From the environment the preset must not override an explicitly
    // chosen save strategy (the sweep's whole point is re-running the
    // strategy matrix with the probe optimizations on).
    if (!FromEnv)
      R.Strategy = AtomOptions::SaveStrategy::SiteLiveness;
    break;
  }
  return R;
}

bool atom::buildAnalysisUnit(const std::vector<ObjectModule> &AnalysisModules,
                             Unit &Out, DiagEngine &Diags) {
  std::vector<ObjectModule> All = AnalysisModules;
  if (!runtime::image().Ok) {
    Diags.error(0, runtime::image().Error);
    return false;
  }
  for (const ObjectModule &M : runtime::libraryModules())
    All.push_back(M);
  ObjectModule Merged;
  if (!link::linkRelocatable(All, "analysis", Merged, Diags,
                             /*RequireResolved=*/false))
    return false;
  for (const Symbol &S : Merged.Symbols)
    if (S.Section == SymSection::Undefined && S.Name != "__heap_start") {
      Diags.error(0, "analysis routines reference undefined symbol '" +
                         S.Name + "'");
      return false;
    }
  return liftObjectModule(Merged, UnitTag::Analysis, Out, Diags);
}

bool atom::instrument(
    const Executable &App,
    const std::function<void(InstrumentationContext &)> &InstrumentFn,
    const std::vector<ObjectModule> &AnalysisModules, const AtomOptions &Opts,
    InstrumentedProgram &Out, DiagEngine &Diags, const PipelineReuse *Reuse) {
  Engine E(App, Opts, Diags, Reuse);
  return E.run(InstrumentFn, AnalysisModules, Out);
}
