//===- atom/Batch.h - Batched, cached instrumentation runs ------*- C++ -*-===//
//
// Runs every (tool, application) pair of a matrix through the ATOM
// pipeline, optionally in parallel on a worker pool and with the two
// app-independent / tool-independent pipeline stages memoized:
//
//   per tool  compile-analysis + link-analysis + lift  ->  om::Unit
//   per app   lift to OM IR                            ->  om::Unit
//
// Cached units are immutable; every pipeline run starts from a deep copy,
// so the instrumented executables are byte-identical to a fresh serial
// runAtom() at any job count (enforced by tests/BatchTests.cpp). Metrics,
// events, and failure diagnostics are replayed on the calling thread in
// tool-major order, so --metrics-out documents and error output are also
// independent of the job count (docs/PIPELINE.md).
//
// The in-memory cache is byte-bounded with LRU eviction (`--cache-bytes`),
// and can be layered over a persistent CacheTier — the atomd daemon plugs
// its on-disk artifact store in here (docs/DAEMON.md), so misses consult
// the disk before rebuilding and every build is spilled for the next
// process.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_BATCH_H
#define ATOM_ATOM_BATCH_H

#include "atom/Driver.h"

#include <map>
#include <memory>
#include <mutex>

namespace atom {

/// One memoized build artifact plus the diagnostics its build produced.
/// Failed builds are cached too (Ok = false), so every consumer of a bad
/// tool or application replays identical diagnostics.
struct CachedUnit {
  bool Ok = false;
  om::Unit U;
  std::vector<Diag> Diags;
};

/// 128-bit content identity of a cached pipeline artifact: two 64-bit
/// hashes of the same content computed with unrelated mixes (fnv1a and
/// support's mixHash). The keys persist across restarts as the on-disk
/// store's addressing (atomd::Store), so a bare 64-bit FNV-1a — weak
/// against crafted inputs — is not trusted alone: a collision would have
/// to defeat both lanes at once.
struct CacheKey {
  uint64_t K0 = 0; ///< FNV-1a lane.
  uint64_t K1 = 0; ///< mixHash lane.

  CacheKey() = default;
  CacheKey(uint64_t K0, uint64_t K1 = 0) : K0(K0), K1(K1) {}

  bool operator==(const CacheKey &O) const {
    return K0 == O.K0 && K1 == O.K1;
  }
  bool operator!=(const CacheKey &O) const { return !(*this == O); }
  bool operator<(const CacheKey &O) const {
    return K0 != O.K0 ? K0 < O.K0 : K1 < O.K1;
  }
};

/// Content-addressed key of a tool's analysis unit: both hash lanes over
/// the tool's name and sources, domain-separated from application keys.
/// Stable across processes, so it doubles as the persistent store key
/// (atomd::Store).
CacheKey toolCacheKey(const Tool &T);

/// Content-addressed key of an application: both hash lanes over its
/// serialized executable image.
CacheKey appCacheKey(const obj::Executable &App);

/// A second-level artifact cache behind the in-memory PipelineCache (the
/// atomd on-disk store). Implementations must be safe for concurrent calls
/// with distinct keys; the PipelineCache serializes calls per key.
class CacheTier {
public:
  virtual ~CacheTier() = default;
  /// Fills \p Out for \p Key if the tier holds a valid entry.
  virtual bool load(CacheKey Key, CachedUnit &Out) = 0;
  /// Persists a freshly built \p U under \p Key (best effort).
  virtual void store(CacheKey Key, const CachedUnit &U) = 0;
};

struct CacheStats {
  uint64_t Hits = 0;      ///< In-memory hits.
  uint64_t Misses = 0;    ///< In-memory misses (tier loads + builds).
  uint64_t TierHits = 0;  ///< Misses satisfied by the CacheTier, no build.
  uint64_t Evictions = 0; ///< Entries evicted to respect the byte cap.
  uint64_t Bytes = 0;     ///< Cumulative footprint of units built/loaded.
  uint64_t Resident = 0;  ///< Current in-memory footprint.
};

/// Content-addressed memo of pipeline artifacts, safe for concurrent use.
/// Keys are FNV-1a hashes of the tool's name and sources (analysis units)
/// or of the executable image (lifted applications), so two Tool values
/// with identical sources share one entry. Each entry is built at most
/// once while resident; concurrent requesters block until the first build
/// finishes. Entries are handed out as shared_ptr so an evicted unit stays
/// valid for every pipeline still using it.
class PipelineCache {
public:
  using UnitPtr = std::shared_ptr<const CachedUnit>;

  /// \p MaxBytes caps the resident footprint (0 = unbounded); the
  /// least-recently-used entries are evicted once the cap is exceeded.
  explicit PipelineCache(uint64_t MaxBytes = 0) : MaxBytes(MaxBytes) {}

  /// The tool's analysis unit: analysis sources compiled, linked with a
  /// private copy of the runtime library, and lifted to OM IR.
  UnitPtr analysisUnit(const Tool &T);

  /// The application executable lifted to OM IR.
  UnitPtr liftedApp(const obj::Executable &App);

  /// Plugs a persistent second level under this cache (not owned; may be
  /// null). Misses try \p T before building, and completed builds are
  /// spilled to it. Set before sharing the cache across threads.
  void setTier(CacheTier *T) { Tier = T; }

  CacheStats stats() const;

  /// Adds this cache's activity since the last publish to the global
  /// registry: atom.cache-hits / -misses / -tier-hits / -evictions /
  /// -bytes counter deltas plus the atom.cache-resident-bytes gauge
  /// (no-op while the registry is disabled).
  void publishStats();

private:
  struct Slot {
    std::mutex Mu; ///< Serializes the one-time build of this entry.
    bool Done = false;                ///< Guarded by Slot::Mu.
    std::shared_ptr<CachedUnit> Art;  ///< Set once Done.
    // Guarded by PipelineCache::Mu:
    bool Ready = false;   ///< Build finished and accounted; evictable.
    uint64_t Bytes = 0;   ///< Footprint charged against the cap.
    uint64_t LastUse = 0; ///< LRU clock value of the last access.
  };

  UnitPtr getOrBuild(CacheKey Key,
                     const std::function<bool(om::Unit &, DiagEngine &)>
                         &Build);
  void evictLocked(); ///< Requires Mu.

  mutable std::mutex Mu; ///< Guards Slots (the map, not the entries),
                         ///< stats, and the LRU bookkeeping.
  std::map<CacheKey, std::shared_ptr<Slot>> Slots;
  uint64_t MaxBytes;
  uint64_t UseClock = 0;
  CacheTier *Tier = nullptr;
  CacheStats Stats;
  CacheStats Published; ///< Snapshot at the last publishStats().
};

/// Outcome of one (tool, application) pipeline run within a batch.
struct BatchResult {
  bool Ok = false;
  InstrumentedProgram Prog;       ///< Valid when Ok.
  std::vector<Diag> Diags;        ///< This run's diagnostics (empty if Ok).
};

/// Instruments every application with every tool: Tools.size() *
/// Apps.size() pipeline runs, distributed over Opts.Jobs worker threads
/// (0 = one per hardware thread, 1 = serial on the calling thread) and
/// sharing memoized artifacts through \p Cache when Opts.CachePipeline is
/// set (a private cache capped at Opts.CacheBytes is used when \p Cache is
/// null). Results is resized to the full matrix, tool-major:
/// Results[TI * Apps.size() + AI].
///
/// Returns true iff every run succeeded. Failure diagnostics are replayed
/// into \p Diags prefixed with "tool '<name>', app #<index>:", and
/// per-run statistics are published to the global registry, both in
/// tool-major order regardless of the job count.
bool runAtomBatch(const std::vector<const obj::Executable *> &Apps,
                  const std::vector<const Tool *> &Tools,
                  const AtomOptions &Opts, std::vector<BatchResult> &Results,
                  DiagEngine &Diags, PipelineCache *Cache = nullptr);

} // namespace atom

#endif // ATOM_ATOM_BATCH_H
