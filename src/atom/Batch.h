//===- atom/Batch.h - Batched, cached instrumentation runs ------*- C++ -*-===//
//
// Runs every (tool, application) pair of a matrix through the ATOM
// pipeline, optionally in parallel on a worker pool and with the two
// app-independent / tool-independent pipeline stages memoized:
//
//   per tool  compile-analysis + link-analysis + lift  ->  om::Unit
//   per app   lift to OM IR                            ->  om::Unit
//
// Cached units are immutable; every pipeline run starts from a deep copy,
// so the instrumented executables are byte-identical to a fresh serial
// runAtom() at any job count (enforced by tests/BatchTests.cpp). Metrics,
// events, and failure diagnostics are replayed on the calling thread in
// tool-major order, so --metrics-out documents and error output are also
// independent of the job count (docs/PIPELINE.md).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_BATCH_H
#define ATOM_ATOM_BATCH_H

#include "atom/Driver.h"

#include <map>
#include <memory>
#include <mutex>

namespace atom {

/// One memoized build artifact plus the diagnostics its build produced.
/// Failed builds are cached too (Ok = false), so every consumer of a bad
/// tool or application replays identical diagnostics.
struct CachedUnit {
  bool Ok = false;
  om::Unit U;
  std::vector<Diag> Diags;
};

struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0; ///< Builds performed (successful or failed).
  uint64_t Bytes = 0;  ///< Approximate footprint of cached units.
};

/// Content-addressed memo of pipeline artifacts, safe for concurrent use.
/// Keys are FNV-1a hashes of the tool's name and sources (analysis units)
/// or of the executable image (lifted applications), so two Tool values
/// with identical sources share one entry. Each entry is built at most
/// once; concurrent requesters block until the first build finishes.
class PipelineCache {
public:
  /// The tool's analysis unit: analysis sources compiled, linked with a
  /// private copy of the runtime library, and lifted to OM IR.
  const CachedUnit &analysisUnit(const Tool &T);

  /// The application executable lifted to OM IR.
  const CachedUnit &liftedApp(const obj::Executable &App);

  CacheStats stats() const;

  /// Adds this cache's activity since the last publish to the global
  /// registry as atom.cache-hits / atom.cache-misses / atom.cache-bytes
  /// counter deltas (no-op while the registry is disabled).
  void publishStats();

private:
  struct Slot {
    std::mutex Mu; ///< Serializes the one-time build of this entry.
    bool Done = false;
    CachedUnit Art;
  };

  const CachedUnit &
  getOrBuild(uint64_t Key,
             const std::function<bool(om::Unit &, DiagEngine &)> &Build);

  mutable std::mutex Mu; ///< Guards Slots (the map, not the entries), stats.
  std::map<uint64_t, std::unique_ptr<Slot>> Slots;
  CacheStats Stats;
  CacheStats Published; ///< Snapshot at the last publishStats().
};

/// Outcome of one (tool, application) pipeline run within a batch.
struct BatchResult {
  bool Ok = false;
  InstrumentedProgram Prog;       ///< Valid when Ok.
  std::vector<Diag> Diags;        ///< This run's diagnostics (empty if Ok).
};

/// Instruments every application with every tool: Tools.size() *
/// Apps.size() pipeline runs, distributed over Opts.Jobs worker threads
/// (0 = one per hardware thread, 1 = serial on the calling thread) and
/// sharing memoized artifacts through \p Cache when Opts.CachePipeline is
/// set (a private cache is used when \p Cache is null). Results is resized
/// to the full matrix, tool-major: Results[TI * Apps.size() + AI].
///
/// Returns true iff every run succeeded. Failure diagnostics are replayed
/// into \p Diags prefixed with "tool '<name>', app #<index>:", and
/// per-run statistics are published to the global registry, both in
/// tool-major order regardless of the job count.
bool runAtomBatch(const std::vector<const obj::Executable *> &Apps,
                  const std::vector<const Tool *> &Tools,
                  const AtomOptions &Opts, std::vector<BatchResult> &Results,
                  DiagEngine &Diags, PipelineCache *Cache = nullptr);

} // namespace atom

#endif // ATOM_ATOM_BATCH_H
