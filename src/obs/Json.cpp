//===- obs/Json.cpp -------------------------------------------------------===//

#include "obs/Json.h"

#include "support/Support.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace atom;
using namespace atom::obs::json;

uint64_t Value::asU64() const {
  return std::strtoull(Text.c_str(), nullptr, 10);
}

int64_t Value::asI64() const {
  return std::strtoll(Text.c_str(), nullptr, 10);
}

double Value::asDouble() const { return std::strtod(Text.c_str(), nullptr); }

namespace {

/// Containers may nest at most this deep. The parser (and the Value tree
/// it builds) is recursive, and sockets feed it untrusted input — without
/// a bound, a few megabytes of '[' overflow the stack.
constexpr unsigned MaxNestingDepth = 64;

class Parser {
public:
  Parser(const std::string &S) : S(S) {}

  bool parse(Value &Out, std::string &Err) {
    if (!value(Out, Err))
      return false;
    skipWs();
    if (Pos != S.size()) {
      Err = "trailing characters";
      return false;
    }
    return true;
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(uint8_t(S[Pos])))
      ++Pos;
  }

  bool fail(std::string &Err, const char *Msg) {
    Err = formatString("%s at offset %zu", Msg, Pos);
    return false;
  }

  bool value(Value &Out, std::string &Err) {
    skipWs();
    if (Pos >= S.size())
      return fail(Err, "unexpected end of input");
    char C = S[Pos];
    if (C == '{' || C == '[') {
      if (Depth >= MaxNestingDepth)
        return fail(Err, "nesting too deep");
      ++Depth;
      bool Ok = C == '{' ? object(Out, Err) : array(Out, Err);
      --Depth;
      return Ok;
    }
    if (C == '"') {
      Out.K = Value::Str;
      return string(Out.Text, Err);
    }
    if (C == 't' || C == 'f') {
      const char *Lit = C == 't' ? "true" : "false";
      size_t N = std::strlen(Lit);
      if (S.compare(Pos, N, Lit) != 0)
        return fail(Err, "bad literal");
      Pos += N;
      Out.K = Value::Bool;
      Out.B = C == 't';
      return true;
    }
    if (C == 'n') {
      if (S.compare(Pos, 4, "null") != 0)
        return fail(Err, "bad literal");
      Pos += 4;
      Out.K = Value::Null;
      return true;
    }
    // Number.
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(uint8_t(S[Pos])) || std::strchr(".eE+-", S[Pos])))
      ++Pos;
    if (Pos == Start)
      return fail(Err, "unexpected character");
    Out.K = Value::Num;
    Out.Text = S.substr(Start, Pos - Start);
    return true;
  }

  bool string(std::string &Out, std::string &Err) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        break;
      char E = S[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail(Err, "bad \\u escape");
        unsigned V = 0;
        for (unsigned I = 0; I < 4; ++I) {
          char H = S[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= unsigned(H - 'A' + 10);
          else
            return fail(Err, "bad \\u escape");
        }
        // The writer only emits \u00xx control escapes; decode the low
        // byte and ignore the (unused) non-BMP/UTF-16 machinery.
        Out += char(uint8_t(V));
        break;
      }
      default:
        return fail(Err, "bad escape");
      }
    }
    return fail(Err, "unterminated string");
  }

  bool object(Value &Out, std::string &Err) {
    Out.K = Value::Obj;
    ++Pos; // {
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"')
        return fail(Err, "expected object key");
      std::string Key;
      if (!string(Key, Err))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail(Err, "expected ':'");
      ++Pos;
      Value V;
      if (!value(V, Err))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail(Err, "expected ',' or '}'");
    }
  }

  bool array(Value &Out, std::string &Err) {
    Out.K = Value::Arr;
    ++Pos; // [
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value V;
      if (!value(V, Err))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail(Err, "expected ',' or ']'");
    }
  }

  const std::string &S;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

bool atom::obs::json::parse(const std::string &Text, Value &Out,
                            std::string &Err) {
  return Parser(Text).parse(Out, Err);
}
