//===- obs/Obs.cpp - Observability: metrics, spans, events ----------------===//

#include "obs/Obs.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include "support/Support.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

using namespace atom;
using namespace atom::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketOf(uint64_t V) {
  if (V == 0)
    return 0;
  unsigned Bits = 0;
  while (V) {
    V >>= 1;
    ++Bits;
  }
  return Bits; // value in [2^(Bits-1), 2^Bits)
}

uint64_t Histogram::bucketLo(unsigned I) {
  if (I == 0)
    return 0;
  return uint64_t(1) << (I - 1);
}

uint64_t Histogram::bucketHi(unsigned I) {
  if (I == 0)
    return 0;
  if (I >= 64)
    return ~uint64_t(0);
  return (uint64_t(1) << I) - 1;
}

void Histogram::record(uint64_t V) {
  ++Count;
  Sum += V;
  Min = std::min(Min, V);
  Max = std::max(Max, V);
  ++Buckets[bucketOf(V)];
}

std::string Histogram::render(const std::string &Unit) const {
  std::string Out;
  if (!Count)
    return "  (empty)\n";
  uint64_t Peak = 0;
  for (uint64_t B : Buckets)
    Peak = std::max(Peak, B);
  for (unsigned I = 0; I < NumBuckets; ++I) {
    if (!Buckets[I])
      continue;
    unsigned Width = unsigned(40 * Buckets[I] / Peak);
    Out += formatString("  [%10llu, %10llu] %10llu ",
                        (unsigned long long)bucketLo(I),
                        (unsigned long long)bucketHi(I),
                        (unsigned long long)Buckets[I]);
    Out.append(Width, '#');
    Out += '\n';
  }
  Out += formatString("  count %llu  min %llu  mean %.1f  max %llu%s%s\n",
                      (unsigned long long)Count, (unsigned long long)min(),
                      mean(), (unsigned long long)Max,
                      Unit.empty() ? "" : " ", Unit.c_str());
  return Out;
}

bool Histogram::operator==(const Histogram &O) const {
  return Count == O.Count && Sum == O.Sum && Max == O.Max &&
         (Count == 0 || Min == O.Min) &&
         std::equal(Buckets, Buckets + NumBuckets, O.Buckets);
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

std::string JsonWriter::quote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (uint8_t(C) < 0x20)
        Out += formatString("\\u%04x", unsigned(uint8_t(C)));
      else
        Out += C;
    }
  }
  Out += '"';
  return Out;
}

std::string JsonWriter::number(double V) {
  std::string S = formatString("%.17g", V);
  // Trim to the shortest representation that still round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    std::string T = formatString("%.*g", Prec, V);
    if (std::strtod(T.c_str(), nullptr) == V)
      return T;
  }
  return S;
}

void JsonWriter::comma() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  Out += '}';
  NeedComma.pop_back();
}

void JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  Out += ']';
  NeedComma.pop_back();
}

void JsonWriter::key(const std::string &K) {
  comma();
  Out += quote(K);
  Out += ':';
  PendingKey = true;
}

void JsonWriter::value(const std::string &V) {
  comma();
  Out += quote(V);
}

void JsonWriter::value(uint64_t V) {
  comma();
  Out += formatString("%" PRIu64, V);
}

void JsonWriter::value(int64_t V) {
  comma();
  Out += formatString("%" PRId64, V);
}

void JsonWriter::value(double V) {
  comma();
  Out += number(V);
}

void JsonWriter::value(bool V) {
  comma();
  Out += V ? "true" : "false";
}

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

Event &Event::str(const std::string &Name, const std::string &V) {
  Field F;
  F.Name = Name;
  F.Ty = Field::TStr;
  F.Str = V;
  Fields.push_back(std::move(F));
  return *this;
}

Event &Event::num(const std::string &Name, uint64_t V) {
  Field F;
  F.Name = Name;
  F.Ty = Field::TNum;
  F.Num = V;
  Fields.push_back(std::move(F));
  return *this;
}

Event &Event::flt(const std::string &Name, double V) {
  Field F;
  F.Name = Name;
  F.Ty = Field::TFlt;
  F.Flt = V;
  Fields.push_back(std::move(F));
  return *this;
}

Event &Event::boolean(const std::string &Name, bool V) {
  Field F;
  F.Name = Name;
  F.Ty = Field::TBool;
  F.Bool = V;
  Fields.push_back(std::move(F));
  return *this;
}

std::string Event::jsonLine() const {
  JsonWriter W;
  W.beginObject();
  W.key("event");
  W.value(Kind);
  for (const Field &F : Fields) {
    W.key(F.Name);
    switch (F.Ty) {
    case Field::TStr: W.value(F.Str); break;
    case Field::TNum: W.value(F.Num); break;
    case Field::TFlt: W.value(F.Flt); break;
    case Field::TBool: W.value(F.Bool); break;
    }
  }
  W.endObject();
  return W.take();
}

bool Event::Field::operator==(const Field &O) const {
  if (Name != O.Name || Ty != O.Ty)
    return false;
  switch (Ty) {
  case TStr: return Str == O.Str;
  case TNum: return Num == O.Num;
  case TFlt: return Flt == O.Flt;
  case TBool: return Bool == O.Bool;
  }
  return false;
}

bool Event::operator==(const Event &O) const {
  return Kind == O.Kind && Fields == O.Fields;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// Per-thread span state: the innermost open span node per registry. The
/// registry id (not its address) keys entries so a destroyed registry's
/// slot can never alias a new one; the epoch invalidates entries when the
/// tree is reset or the thread anchor moves. Only ever touched while the
/// owning registry is enabled, so the disabled path stays allocation-free.
struct TlsSpanState {
  uint64_t RegId = 0;
  uint64_t Epoch = 0;
  Registry::SpanNode *Current = nullptr;
};

thread_local std::vector<TlsSpanState> TlsSpans;

TlsSpanState &tlsEntry(uint64_t RegId) {
  for (TlsSpanState &E : TlsSpans)
    if (E.RegId == RegId)
      return E;
  TlsSpans.push_back(TlsSpanState{RegId, 0, nullptr});
  return TlsSpans.back();
}

std::atomic<uint64_t> NextRegistryId{1};

} // namespace

Registry::Registry()
    : Id(NextRegistryId.fetch_add(1, std::memory_order_relaxed)) {}

Registry &Registry::global() {
  static Registry R;
  return R;
}

Registry::SpanNode *Registry::threadParent() {
  TlsSpanState &T = tlsEntry(Id);
  uint64_t E = TlsEpoch.load(std::memory_order_relaxed);
  if (T.Epoch == E && T.Current)
    return T.Current;
  return Anchor;
}

void Registry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
  Events.clear();
  Root = SpanNode{"root", 0, 0, {}, {}};
  Anchor = &Root;
  ++ResetCount;
  TlsEpoch.fetch_add(1, std::memory_order_relaxed);
  Allocs = 0;
}

void Registry::anchorThreadsAtCurrent() {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  Anchor = threadParent();
  TlsEpoch.fetch_add(1, std::memory_order_relaxed);
}

void Registry::anchorThreadsAtRoot() {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  Anchor = &Root;
  TlsEpoch.fetch_add(1, std::memory_order_relaxed);
}

void Registry::addCounter(const std::string &Name, uint64_t Delta) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end()) {
    ++Allocs;
    Counters.emplace(Name, Delta);
  } else {
    It->second += Delta;
  }
}

void Registry::setGauge(const std::string &Name, double V) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end()) {
    ++Allocs;
    Gauges.emplace(Name, V);
  } else {
    It->second = V;
  }
}

void Registry::recordValue(const std::string &Name, uint64_t V) {
  if (!enabled())
    return;
  TraceContext Ctx = currentTrace();
  std::lock_guard<std::mutex> L(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    ++Allocs;
    It = Histograms.emplace(Name, Histogram()).first;
  }
  It->second.record(V);
  if (Ctx.valid()) {
    // Trace-id exemplar (latest wins): fixed fields, no allocation, and a
    // scrape can point a histogram outlier at one concrete request.
    It->second.ExemplarValue = V;
    It->second.ExemplarHi = Ctx.Hi;
    It->second.ExemplarLo = Ctx.Lo;
  }
}

uint64_t Registry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

const Histogram *Registry::histogram(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Histograms.find(Name);
  // std::map nodes are stable, so the pointer outlives the lock; reading
  // through it while another thread records is a snapshot-API misuse.
  return It == Histograms.end() ? nullptr : &It->second;
}

void Registry::emitEvent(Event E) {
  if (!enabled())
    return;
  // Named threads (daemon/worker/pool) stamp their events so interleaved
  // event streams attribute each failure to the thread that saw it.
  if (const std::string &Thr = currentThreadName(); !Thr.empty())
    E.str("thread", Thr);
  // Request-scoped threads stamp the current trace context so one
  // request's events stitch across the client/daemon/worker JSONL
  // streams, and mirror the event into the flight recorder for
  // postmortem dumps.
  if (TraceContext Ctx = currentTrace(); Ctx.valid()) {
    E.str("trace_id", Ctx.traceIdHex());
    E.str("span", Ctx.spanIdHex());
    FlightRecorder::global().recordEvent(Ctx, E.kind().c_str(),
                                         /*Error=*/false);
  }
  std::lock_guard<std::mutex> L(Mu);
  if (EventStream) {
    std::string Line = E.jsonLine();
    std::fprintf(EventStream, "%s\n", Line.c_str());
  }
  ++Allocs;
  Events.push_back(std::move(E));
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Span::Span(Registry &R, const char *Name) {
  if (!R.enabled())
    return;
  Reg = &R;
  {
    std::lock_guard<std::mutex> L(R.Mu);
    Saved = R.threadParent();
    for (auto &C : Saved->Children)
      if (C->Name == Name) {
        Node = C.get();
        break;
      }
    if (!Node) {
      ++R.Allocs;
      Saved->Children.push_back(std::make_unique<Registry::SpanNode>());
      Node = Saved->Children.back().get();
      Node->Name = Name;
      Node->Thread = currentThreadName();
    }
    ++Node->Count;
    ResetAtOpen = R.ResetCount;
    TlsSpanState &T = tlsEntry(R.Id);
    T = {R.Id, R.TlsEpoch.load(std::memory_order_relaxed), Node};
  }
  Start = Clock::now();
}

Span::~Span() {
  if (!Reg)
    return;
  Clock::time_point End = Clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();
  TraceContext Ctx = currentTrace();
  // The flight-record name is copied out while still holding the lock: a
  // concurrent reset() frees the node tree, so no pointer into it may
  // survive the unlock.
  char Name[sizeof(FlightRecord::Name)] = {};
  {
    std::lock_guard<std::mutex> L(Reg->Mu);
    if (Reg->ResetCount != ResetAtOpen)
      return; // The tree this span opened into was reset; Node is gone.
    Node->Seconds += Secs;
    if (Ctx.valid())
      std::strncpy(Name, Node->Name.c_str(), sizeof(Name) - 1);
    TlsSpanState &T = tlsEntry(Reg->Id);
    T = {Reg->Id, Reg->TlsEpoch.load(std::memory_order_relaxed), Saved};
  }
  // Request-scoped spans also land in the flight recorder (lock-free,
  // fixed storage) so postmortems and stitched traces can replay this
  // request's phases with begin timestamps and durations.
  if (Ctx.valid()) {
    int64_t StartUs = std::chrono::duration_cast<std::chrono::microseconds>(
                          Start.time_since_epoch())
                          .count();
    FlightRecorder::global().recordSpan(Ctx, Name, StartUs,
                                        uint64_t(Secs * 1e6));
  }
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void writeSpanNode(JsonWriter &W, const Registry::SpanNode &N) {
  W.beginObject();
  W.key("name");
  W.value(N.Name);
  if (!N.Thread.empty()) {
    W.key("thread");
    W.value(N.Thread);
  }
  W.key("seconds");
  W.value(N.Seconds);
  W.key("count");
  W.value(N.Count);
  W.key("children");
  W.beginArray();
  for (const auto &C : N.Children)
    writeSpanNode(W, *C);
  W.endArray();
  W.endObject();
}

} // namespace

std::string Registry::toJson() const {
  std::lock_guard<std::mutex> L(Mu);
  JsonWriter W;
  W.beginObject();

  W.key("counters");
  W.beginObject();
  for (const auto &[Name, V] : Counters) {
    W.key(Name);
    W.value(V);
  }
  W.endObject();

  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, V] : Gauges) {
    W.key(Name);
    W.value(V);
  }
  W.endObject();

  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    W.beginObject();
    W.key("count");
    W.value(H.count());
    W.key("sum");
    W.value(H.sum());
    W.key("min");
    W.value(H.min());
    W.key("max");
    W.value(H.max());
    W.key("buckets");
    W.beginArray();
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
      if (!H.bucketCount(I))
        continue;
      W.beginArray();
      W.value(Histogram::bucketLo(I));
      W.value(Histogram::bucketHi(I));
      W.value(H.bucketCount(I));
      W.endArray();
    }
    W.endArray();
    if (H.hasExemplar()) {
      W.key("exemplar");
      W.beginObject();
      W.key("value");
      W.value(H.exemplarValue());
      W.key("trace_id");
      W.value(TraceContext::hex64(H.exemplarTraceHi()) +
              TraceContext::hex64(H.exemplarTraceLo()));
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();

  W.key("spans");
  W.beginArray();
  for (const auto &C : Root.Children)
    writeSpanNode(W, *C);
  W.endArray();

  W.key("events");
  W.beginArray();
  for (const Event &E : Events) {
    W.beginObject();
    W.key("event");
    W.value(E.kind());
    for (const Event::Field &F : E.Fields) {
      W.key(F.Name);
      switch (F.Ty) {
      case Event::Field::TStr: W.value(F.Str); break;
      case Event::Field::TNum: W.value(F.Num); break;
      case Event::Field::TFlt: W.value(F.Flt); break;
      case Event::Field::TBool: W.value(F.Bool); break;
      }
    }
    W.endObject();
  }
  W.endArray();

  W.endObject();
  return W.take();
}

namespace {

std::string promName(const std::string &Name) {
  std::string Out = "atom_";
  for (char C : Name)
    Out += std::isalnum(uint8_t(C)) ? C : '_';
  return Out;
}

/// Prometheus label-value escaping: backslash, double quote, and newline
/// must be escaped inside the quoted label value (exposition format §
/// "Escaping"). Span names are caller-controlled strings, so exporting
/// them raw would corrupt the whole scrape.
std::string promLabelValue(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    switch (C) {
    case '\\': Out += "\\\\"; break;
    case '"': Out += "\\\""; break;
    case '\n': Out += "\\n"; break;
    default: Out += C; break;
    }
  }
  return Out;
}

void promSpans(std::string &Out, const Registry::SpanNode &N,
               const std::string &Path) {
  for (const auto &C : N.Children) {
    std::string P = Path.empty() ? C->Name : Path + "/" + C->Name;
    std::string PE = promLabelValue(P);
    Out += formatString("atom_span_seconds{path=\"%s\"} %s\n", PE.c_str(),
                        JsonWriter::number(C->Seconds).c_str());
    Out += formatString("atom_span_count{path=\"%s\"} %llu\n", PE.c_str(),
                        (unsigned long long)C->Count);
    promSpans(Out, *C, P);
  }
}

} // namespace

std::string Registry::toPrometheus(bool OpenMetrics) const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out;
  for (const auto &[Name, V] : Counters) {
    std::string N = promName(Name);
    Out += formatString("# TYPE %s counter\n%s %llu\n", N.c_str(), N.c_str(),
                        (unsigned long long)V);
  }
  for (const auto &[Name, V] : Gauges) {
    std::string N = promName(Name);
    Out += formatString("# TYPE %s gauge\n%s %s\n", N.c_str(), N.c_str(),
                        JsonWriter::number(V).c_str());
  }
  for (const auto &[Name, H] : Histograms) {
    std::string N = promName(Name);
    Out += formatString("# TYPE %s histogram\n", N.c_str());
    // The bucket holding the exemplar value gets an OpenMetrics exemplar
    // suffix ("# {trace_id=...} value") linking the aggregate to one
    // concrete traced request — but only in a negotiated OpenMetrics
    // exposition: the classic text/plain parser reads the trailing '#'
    // token as a malformed timestamp and fails the whole scrape.
    unsigned ExBucket = OpenMetrics && H.hasExemplar()
                            ? Histogram::bucketOf(H.exemplarValue())
                            : Histogram::NumBuckets;
    uint64_t Cum = 0;
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
      if (!H.bucketCount(I))
        continue;
      Cum += H.bucketCount(I);
      Out += formatString("%s_bucket{le=\"%llu\"} %llu", N.c_str(),
                          (unsigned long long)Histogram::bucketHi(I),
                          (unsigned long long)Cum);
      if (I == ExBucket)
        Out += formatString(
            " # {trace_id=\"%s%s\"} %llu",
            TraceContext::hex64(H.exemplarTraceHi()).c_str(),
            TraceContext::hex64(H.exemplarTraceLo()).c_str(),
            (unsigned long long)H.exemplarValue());
      Out += '\n';
    }
    Out += formatString("%s_bucket{le=\"+Inf\"} %llu\n", N.c_str(),
                        (unsigned long long)H.count());
    Out += formatString("%s_sum %llu\n%s_count %llu\n", N.c_str(),
                        (unsigned long long)H.sum(), N.c_str(),
                        (unsigned long long)H.count());
  }
  promSpans(Out, Root, "");
  if (OpenMetrics)
    Out += "# EOF\n"; // OpenMetrics expositions are explicitly terminated
  return Out;
}

namespace {

void treeLines(std::string &Out, const Registry::SpanNode &N, unsigned Depth,
               double ParentSecs) {
  for (const auto &C : N.Children) {
    double Pct = ParentSecs > 0 ? 100.0 * C->Seconds / ParentSecs : 0;
    std::string Label(2 * Depth, ' ');
    Label += C->Name;
    Out += formatString("  %-28s %10.3f ms %6.1f%%", Label.c_str(),
                        1000.0 * C->Seconds, Pct);
    if (C->Count > 1)
      Out += formatString("  x%llu", (unsigned long long)C->Count);
    Out += '\n';
    treeLines(Out, *C, Depth + 1, C->Seconds);
  }
}

} // namespace

std::string Registry::timingTree() const {
  std::lock_guard<std::mutex> L(Mu);
  if (Root.Children.empty())
    return "";
  double Total = 0;
  for (const auto &C : Root.Children)
    Total += C->Seconds;
  std::string Out =
      formatString("phase timing (total %.3f ms):\n", 1000.0 * Total);
  treeLines(Out, Root, 0, Total);
  return Out;
}

//===----------------------------------------------------------------------===//
// fromJson — loads exactly the toJson() schema via the obs::json parser
//===----------------------------------------------------------------------===//

namespace {

using JValue = json::Value;

bool loadSpan(const JValue &V, Registry::SpanNode &Out, std::string &Err) {
  const JValue *Name = V.find("name"), *Secs = V.find("seconds"),
               *Count = V.find("count"), *Kids = V.find("children");
  if (V.K != JValue::Obj || !Name || Name->K != JValue::Str || !Secs ||
      Secs->K != JValue::Num || !Count || Count->K != JValue::Num || !Kids ||
      Kids->K != JValue::Arr) {
    Err = "malformed span node";
    return false;
  }
  Out.Name = Name->Text;
  if (const JValue *Thr = V.find("thread"))
    Out.Thread = Thr->K == JValue::Str ? Thr->Text : "";
  Out.Seconds = Secs->asDouble();
  Out.Count = Count->asU64();
  for (const JValue &C : Kids->Items) {
    auto Child = std::make_unique<Registry::SpanNode>();
    if (!loadSpan(C, *Child, Err))
      return false;
    Out.Children.push_back(std::move(Child));
  }
  return true;
}

} // namespace

bool Registry::fromJson(const std::string &Text, Registry &Out,
                        std::string &Err) {
  JValue Doc;
  if (!json::parse(Text, Doc, Err))
    return false;
  if (Doc.K != JValue::Obj) {
    Err = "top level is not an object";
    return false;
  }
  Out.reset();
  Out.setEnabled(true);

  if (const JValue *Cs = Doc.find("counters")) {
    if (Cs->K != JValue::Obj) {
      Err = "counters is not an object";
      return false;
    }
    for (const auto &[Name, V] : Cs->Members)
      Out.Counters[Name] = V.asU64();
  }
  if (const JValue *Gs = Doc.find("gauges")) {
    if (Gs->K != JValue::Obj) {
      Err = "gauges is not an object";
      return false;
    }
    for (const auto &[Name, V] : Gs->Members)
      Out.Gauges[Name] = V.asDouble();
  }
  if (const JValue *Hs = Doc.find("histograms")) {
    if (Hs->K != JValue::Obj) {
      Err = "histograms is not an object";
      return false;
    }
    for (const auto &[Name, V] : Hs->Members) {
      const JValue *Count = V.find("count"), *Sum = V.find("sum"),
                   *Min = V.find("min"), *Max = V.find("max"),
                   *Buckets = V.find("buckets");
      if (V.K != JValue::Obj || !Count || !Sum || !Min || !Max || !Buckets ||
          Buckets->K != JValue::Arr) {
        Err = "malformed histogram '" + Name + "'";
        return false;
      }
      Histogram H;
      H.Count = Count->asU64();
      H.Sum = Sum->asU64();
      H.Min = H.Count ? Min->asU64() : ~uint64_t(0);
      H.Max = Max->asU64();
      for (const JValue &B : Buckets->Items) {
        if (B.K != JValue::Arr || B.Items.size() != 3) {
          Err = "malformed histogram bucket";
          return false;
        }
        unsigned Idx = Histogram::bucketOf(B.Items[0].asU64());
        if (Idx >= Histogram::NumBuckets) {
          Err = "histogram bucket out of range";
          return false;
        }
        H.Buckets[Idx] = B.Items[2].asU64();
      }
      if (const JValue *Ex = V.find("exemplar")) {
        const JValue *EV = Ex->find("value"), *ET = Ex->find("trace_id");
        if (Ex->K != JValue::Obj || !EV || !ET || ET->K != JValue::Str ||
            !TraceContext::parseTraceId(ET->Text, H.ExemplarHi,
                                        H.ExemplarLo)) {
          Err = "malformed histogram exemplar";
          return false;
        }
        H.ExemplarValue = EV->asU64();
      }
      Out.Histograms[Name] = H;
    }
  }
  if (const JValue *Spans = Doc.find("spans")) {
    if (Spans->K != JValue::Arr) {
      Err = "spans is not an array";
      return false;
    }
    for (const JValue &N : Spans->Items) {
      auto Child = std::make_unique<SpanNode>();
      if (!loadSpan(N, *Child, Err))
        return false;
      Out.Root.Children.push_back(std::move(Child));
    }
  }
  if (const JValue *Evs = Doc.find("events")) {
    if (Evs->K != JValue::Arr) {
      Err = "events is not an array";
      return false;
    }
    for (const JValue &EV : Evs->Items) {
      if (EV.K != JValue::Obj) {
        Err = "malformed event";
        return false;
      }
      Event E;
      for (const auto &[Name, V] : EV.Members) {
        if (Name == "event" && V.K == JValue::Str) {
          E.Kind = V.Text;
          continue;
        }
        switch (V.K) {
        case JValue::Str:
          E.str(Name, V.Text);
          break;
        case JValue::Bool:
          E.boolean(Name, V.B);
          break;
        case JValue::Num:
          if (V.isIntText())
            E.num(Name, V.asU64());
          else
            E.flt(Name, V.asDouble());
          break;
        default:
          Err = "unsupported event field type";
          return false;
        }
      }
      if (E.Kind.empty()) {
        Err = "event without a kind";
        return false;
      }
      Out.Events.push_back(std::move(E));
    }
  }
  return true;
}
