//===- obs/Trace.cpp - Cross-process request tracing ----------------------===//

#include "obs/Trace.h"

#include "support/Support.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <sys/syscall.h>
#include <unistd.h>

using namespace atom;
using namespace atom::obs;

//===----------------------------------------------------------------------===//
// TraceContext
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint64_t> MintCounter{1};

uint64_t mintWord() {
  uint64_t C = MintCounter.fetch_add(1, std::memory_order_relaxed);
  uint64_t T = uint64_t(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // Three independent low-entropy sources through a full-avalanche mix:
  // good enough to keep uncoordinated processes from colliding, with no
  // dependency on /dev/urandom in the hot path.
  return avalanche64(avalanche64(T ^ (uint64_t(::getpid()) << 32)) ^
                     avalanche64(C * 0x9E3779B97F4A7C15ull));
}

thread_local TraceContext CurrentCtx;

uint32_t cachedTid() {
  static thread_local uint32_t Tid = uint32_t(::syscall(SYS_gettid));
  return Tid;
}

} // namespace

int64_t obs::traceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceContext TraceContext::mint() {
  TraceContext C;
  C.Hi = mintWord();
  C.Lo = mintWord();
  if (!C.valid())
    C.Lo = 1; // astronomically unlikely; keep valid() honest
  C.SpanId = mintWord();
  return C;
}

uint64_t TraceContext::mintSpanId() { return mintWord(); }

std::string TraceContext::hex64(uint64_t V) {
  char Buf[17];
  for (int I = 15; I >= 0; --I) {
    Buf[I] = "0123456789abcdef"[V & 0xF];
    V >>= 4;
  }
  Buf[16] = 0;
  return Buf;
}

std::string TraceContext::traceIdHex() const {
  if (!valid())
    return "";
  return hex64(Hi) + hex64(Lo);
}

std::string TraceContext::spanIdHex() const { return hex64(SpanId); }

bool TraceContext::parseHex64(const std::string &S, uint64_t &V) {
  if (S.size() != 16)
    return false;
  uint64_t Out = 0;
  for (char C : S) {
    Out <<= 4;
    if (C >= '0' && C <= '9')
      Out |= uint64_t(C - '0');
    else if (C >= 'a' && C <= 'f')
      Out |= uint64_t(C - 'a' + 10);
    else
      return false;
  }
  V = Out;
  return true;
}

bool TraceContext::parseTraceId(const std::string &S, uint64_t &Hi,
                                uint64_t &Lo) {
  if (S.size() != 32)
    return false;
  uint64_t H, L;
  if (!parseHex64(S.substr(0, 16), H) || !parseHex64(S.substr(16), L))
    return false;
  if ((H | L) == 0)
    return false;
  Hi = H;
  Lo = L;
  return true;
}

TraceContext obs::currentTrace() { return CurrentCtx; }

void TraceScope::set(const TraceContext &Ctx) { CurrentCtx = Ctx; }

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

FlightRecorder &FlightRecorder::global() {
  static FlightRecorder R;
  return R;
}

void FlightRecorder::record(const FlightRecord &R) {
  uint64_t N = Next.fetch_add(1, std::memory_order_relaxed);
  Slot &S = Ring[N & (Capacity - 1)];
  // Seqlock publication: odd while the payload is being replaced, then a
  // unique even value. A reader that sees the same even value before and
  // after its copy has a consistent record; anything else is skipped.
  // The full fence keeps the payload store from hoisting above the odd
  // store (a release store only orders what precedes it): without it a
  // reader could see the stale even Seq on both sides of a torn copy.
  S.Seq.store(2 * N + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  S.R = R;
  S.Seq.store(2 * N + 2, std::memory_order_release);
}

void FlightRecorder::recordSpan(const TraceContext &Ctx, const char *Name,
                                int64_t TsUs, uint64_t DurUs) {
  FlightRecord R;
  R.TsUs = TsUs;
  R.DurUs = DurUs;
  R.TraceHi = Ctx.Hi;
  R.TraceLo = Ctx.Lo;
  R.Span = Ctx.SpanId;
  R.Parent = Ctx.ParentSpan;
  R.Tid = cachedTid();
  R.RecKind = FlightRecord::KSpan;
  std::strncpy(R.Name, Name, sizeof(R.Name) - 1);
  record(R);
}

void FlightRecorder::recordEvent(const TraceContext &Ctx, const char *Name,
                                 bool Error) {
  FlightRecord R;
  R.TsUs = traceNowUs();
  R.TraceHi = Ctx.Hi;
  R.TraceLo = Ctx.Lo;
  R.Span = Ctx.SpanId;
  R.Parent = Ctx.ParentSpan;
  R.Tid = cachedTid();
  R.RecKind = Error ? FlightRecord::KError : FlightRecord::KEvent;
  std::strncpy(R.Name, Name, sizeof(R.Name) - 1);
  record(R);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> Out;
  uint64_t N = Next.load(std::memory_order_acquire);
  uint64_t First = N > Capacity ? N - Capacity : 0;
  Out.reserve(size_t(N - First));
  for (uint64_t I = First; I < N; ++I) {
    const Slot &S = Ring[I & (Capacity - 1)];
    uint64_t Before = S.Seq.load(std::memory_order_acquire);
    if (Before != 2 * I + 2)
      continue; // overwritten or mid-write
    FlightRecord R = S.R;
    // Fence the copy before the recheck: an acquire load alone lets the
    // copy sink below it, which would defeat the tear detection.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Seq.load(std::memory_order_relaxed) != Before)
      continue; // torn under us
    Out.push_back(R);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Async-signal-safe dump
//===----------------------------------------------------------------------===//

namespace {

/// Buffered writer usable from a fatal-signal handler: stack storage,
/// write() only. Every put degrades to a no-op after the first failure.
struct SigWriter {
  int Fd;
  char Buf[512];
  size_t Pos = 0;
  bool Ok = true;

  explicit SigWriter(int Fd) : Fd(Fd) {}

  void flush() {
    size_t Off = 0;
    while (Ok && Off < Pos) {
      ssize_t N = ::write(Fd, Buf + Off, Pos - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Ok = false;
        break;
      }
      Off += size_t(N);
    }
    Pos = 0;
  }

  void putc(char C) {
    if (Pos == sizeof(Buf))
      flush();
    Buf[Pos++] = C;
  }

  void puts(const char *S) {
    for (; *S; ++S)
      putc(*S);
  }

  /// JSON string contents: anything that would need escaping becomes '_'
  /// (names here are span/event identifiers, not user text).
  void putName(const char *S) {
    for (; *S; ++S) {
      unsigned char C = (unsigned char)*S;
      putc(C < 0x20 || C == '"' || C == '\\' || C >= 0x7F ? '_' : char(C));
    }
  }

  void putU64(uint64_t V) {
    char Tmp[20];
    int N = 0;
    do {
      Tmp[N++] = char('0' + V % 10);
      V /= 10;
    } while (V);
    while (N)
      putc(Tmp[--N]);
  }

  void putI64(int64_t V) {
    if (V < 0) {
      putc('-');
      putU64(uint64_t(-(V + 1)) + 1);
    } else {
      putU64(uint64_t(V));
    }
  }

  void putHex64(uint64_t V) {
    for (int I = 15; I >= 0; --I)
      putc("0123456789abcdef"[(V >> (4 * I)) & 0xF]);
  }
};

const char *recKindName(uint8_t K) {
  switch (K) {
  case FlightRecord::KEvent: return "event";
  case FlightRecord::KError: return "error";
  default: return "span";
  }
}

} // namespace

bool FlightRecorder::dumpToFd(int Fd) const {
  SigWriter W(Fd);
  TraceContext Ctx = currentTrace();
  W.puts("{\"postmortem\":\"flight-recorder\",\"trace_id\":\"");
  if (Ctx.valid()) {
    W.putHex64(Ctx.Hi);
    W.putHex64(Ctx.Lo);
  }
  W.puts("\",\"flightrec-dropped\":");
  W.putU64(dropped());
  W.puts(",\"records\":[");
  uint64_t N = Next.load(std::memory_order_acquire);
  uint64_t First = N > Capacity ? N - Capacity : 0;
  bool Comma = false;
  for (uint64_t I = First; I < N; ++I) {
    const Slot &S = Ring[I & (Capacity - 1)];
    uint64_t Before = S.Seq.load(std::memory_order_acquire);
    if (Before != 2 * I + 2)
      continue;
    FlightRecord R = S.R;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Seq.load(std::memory_order_relaxed) != Before)
      continue;
    if (Comma)
      W.putc(',');
    Comma = true;
    W.puts("{\"name\":\"");
    W.putName(R.Name);
    W.puts("\",\"kind\":\"");
    W.puts(recKindName(R.RecKind));
    W.puts("\",\"ts-us\":");
    W.putI64(R.TsUs);
    W.puts(",\"dur-us\":");
    W.putU64(R.DurUs);
    W.puts(",\"tid\":");
    W.putU64(R.Tid);
    W.puts(",\"trace\":\"");
    if (R.TraceHi | R.TraceLo) {
      W.putHex64(R.TraceHi);
      W.putHex64(R.TraceLo);
    }
    W.puts("\",\"span\":\"");
    W.putHex64(R.Span);
    W.puts("\",\"parent\":\"");
    W.putHex64(R.Parent);
    W.puts("\"}");
  }
  W.puts("]}\n");
  W.flush();
  return W.Ok;
}

//===----------------------------------------------------------------------===//
// Crash-dump arming
//===----------------------------------------------------------------------===//

namespace {

const int FatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

// The armed dump path lives in fixed storage and is claimed with one
// exchange. open(2) is on the POSIX async-signal-safe list, so the
// handler creates the file itself — the no-crash path (every successful
// request) never touches the filesystem at all.
std::atomic<bool> Armed{false};
char ArmedPath[512];

void crashDumpHandler(int Sig) {
  if (Armed.exchange(false, std::memory_order_acq_rel)) {
    int Fd = ::open(ArmedPath, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (Fd >= 0) {
      FlightRecorder::global().dumpToFd(Fd);
      ::close(Fd);
    }
  }
  // Restore the default disposition and re-deliver so the process still
  // dies with the original signal (the worker pool reads it from wait()).
  ::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

void installCrashHandlersOnce() {
  static const bool Installed = [] {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = crashDumpHandler;
    sigemptyset(&SA.sa_mask);
    for (int Sig : FatalSignals)
      ::sigaction(Sig, &SA, nullptr);
    return true;
  }();
  (void)Installed;
}

} // namespace

bool FlightRecorder::arm(const std::string &Path) {
  // Handlers are installed exactly once; per-request arming is just a
  // path swap (an unarmed handler re-raises with the default disposition,
  // so leaving them installed is behavior-neutral).
  Armed.store(false, std::memory_order_release);
  if (Path.size() >= sizeof(ArmedPath))
    return false;
  installCrashHandlersOnce();
  std::memcpy(ArmedPath, Path.c_str(), Path.size() + 1);
  Armed.store(true, std::memory_order_release);
  return true;
}

void FlightRecorder::disarm() {
  Armed.store(false, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Trace record rows
//===----------------------------------------------------------------------===//

std::vector<TraceRecordRow> obs::rowsFromRecords(
    const std::vector<FlightRecord> &Recs, const std::string &Proc,
    uint64_t Hi, uint64_t Lo) {
  std::vector<TraceRecordRow> Rows;
  for (const FlightRecord &R : Recs) {
    if ((Hi | Lo) && (R.TraceHi != Hi || R.TraceLo != Lo))
      continue;
    TraceRecordRow Row;
    Row.Proc = Proc;
    Row.Name = R.Name;
    Row.Kind = recKindName(R.RecKind);
    Row.TsUs = R.TsUs;
    Row.DurUs = R.DurUs;
    Row.Tid = R.Tid;
    Row.Hi = R.TraceHi;
    Row.Lo = R.TraceLo;
    Row.Span = R.Span;
    Row.Parent = R.Parent;
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

void obs::writeTraceRow(JsonWriter &W, const TraceRecordRow &R) {
  W.beginObject();
  W.key("proc");
  W.value(R.Proc);
  W.key("name");
  W.value(R.Name);
  W.key("kind");
  W.value(R.Kind);
  W.key("ts-us");
  W.value(int64_t(R.TsUs));
  W.key("dur-us");
  W.value(R.DurUs);
  W.key("tid");
  W.value(R.Tid);
  W.key("trace_id");
  W.value((R.Hi | R.Lo) ? TraceContext::hex64(R.Hi) +
                              TraceContext::hex64(R.Lo)
                        : std::string());
  W.key("span");
  W.value(TraceContext::hex64(R.Span));
  W.key("parent");
  W.value(TraceContext::hex64(R.Parent));
  W.endObject();
}

bool obs::parseTraceRow(const json::Value &V, TraceRecordRow &R) {
  if (V.K != json::Value::Obj)
    return false;
  R.Proc = V.str("proc");
  R.Name = V.str("name");
  R.Kind = V.str("kind", "span");
  R.TsUs = int64_t(V.u64("ts-us"));
  R.DurUs = V.u64("dur-us");
  R.Tid = V.u64("tid");
  std::string Trace = V.str("trace_id");
  if (!Trace.empty() && !TraceContext::parseTraceId(Trace, R.Hi, R.Lo))
    return false;
  TraceContext::parseHex64(V.str("span"), R.Span);
  TraceContext::parseHex64(V.str("parent"), R.Parent);
  return !R.Name.empty();
}

void obs::spliceTraceIntoReply(std::string &Json, const TraceContext &Ctx,
                               const std::vector<TraceRecordRow> &Rows) {
  if (Json.empty() || Json.back() != '}')
    return; // not a finished object document; leave it alone
  JsonWriter W;
  W.beginObject();
  W.key("trace_id");
  W.value(Ctx.traceIdHex());
  W.key("trace");
  W.beginArray();
  for (const TraceRecordRow &R : Rows)
    writeTraceRow(W, R);
  W.endArray();
  W.endObject();
  std::string T = W.take(); // {"trace_id":...,"trace":[...]}
  Json.pop_back();
  // An empty object ("{}", possibly with interior whitespace) takes no
  // separator — "{," is not JSON.
  size_t Last = Json.find_last_not_of(" \t\r\n");
  if (Last != std::string::npos && Json[Last] != '{')
    Json += ',';
  Json.append(T, 1, std::string::npos); // skip T's opening brace
}

std::string obs::chromeTraceJson(const std::vector<TraceRecordRow> &Rows) {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  // One synthetic pid per process label, announced with a process_name
  // metadata event so Perfetto renders client/daemon/worker as separate
  // tracks.
  std::map<std::string, uint64_t> Pids;
  for (const TraceRecordRow &R : Rows) {
    auto It = Pids.find(R.Proc);
    if (It != Pids.end())
      continue;
    uint64_t Pid = Pids.size() + 1;
    Pids.emplace(R.Proc, Pid);
    W.beginObject();
    W.key("ph");
    W.value("M");
    W.key("name");
    W.value("process_name");
    W.key("pid");
    W.value(Pid);
    W.key("tid");
    W.value(uint64_t(0));
    W.key("args");
    W.beginObject();
    W.key("name");
    W.value(R.Proc);
    W.endObject();
    W.endObject();
  }
  for (const TraceRecordRow &R : Rows) {
    W.beginObject();
    W.key("ph");
    W.value(R.Kind == "span" ? "X" : "i");
    W.key("name");
    W.value(R.Name);
    W.key("pid");
    W.value(Pids[R.Proc]);
    W.key("tid");
    W.value(R.Tid);
    W.key("ts");
    W.value(int64_t(R.TsUs));
    if (R.Kind == "span") {
      W.key("dur");
      W.value(R.DurUs);
    } else {
      W.key("s");
      W.value("t");
    }
    W.key("args");
    W.beginObject();
    if (R.Hi | R.Lo) {
      W.key("trace_id");
      W.value(TraceContext::hex64(R.Hi) + TraceContext::hex64(R.Lo));
    }
    W.key("span");
    W.value(TraceContext::hex64(R.Span));
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
