//===- obs/Trace.h - Cross-process request tracing --------------*- C++ -*-===//
//
// Distributed tracing for the atom/atomd stack plus a crash-surviving
// flight recorder (docs/OBSERVABILITY.md, "Tracing"):
//
//   TraceContext   a 128-bit trace id + 64-bit span id minted at the edge
//                  (atom --connect, runAtomBatch) and carried across the
//                  atomd socket and the worker fd-3 channel as protocol-v3
//                  header fields, so one request's spans and events stitch
//                  into a single tree across client, daemon, and worker
//                  processes. A thread-local current context lets Span and
//                  Registry::emitEvent stamp it without plumbing it
//                  through every call signature.
//
//   FlightRecorder a fixed-size lock-free ring of recent spans and events
//                  per process. Always armed (fixed storage, no
//                  allocation, a few atomics per record) so that when a
//                  request ends in worker-crashed / deadline-exceeded /
//                  breaker-open there is something to dump: the daemon
//                  writes <store>/postmortem/<trace_id>.json from its
//                  ring, and a crashing worker best-effort dumps its own
//                  ring from a fatal-signal handler (the dump path is
//                  async-signal-safe: no malloc, no locks, only the
//                  POSIX-safe open()/write()/close()).
//
// Timestamps are CLOCK_MONOTONIC microseconds. On Linux the monotonic
// clock is system-wide, so client/daemon/worker records align on one time
// axis without any clock synchronization — which is what makes the
// stitched tree and the Chrome trace_event export (chromeTraceJson, loads
// in Perfetto) possible.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OBS_TRACE_H
#define ATOM_OBS_TRACE_H

#include "obs/Json.h"
#include "obs/Obs.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace atom {
namespace obs {

//===----------------------------------------------------------------------===//
// TraceContext
//===----------------------------------------------------------------------===//

/// The tracing identity a request carries across process boundaries: which
/// trace it belongs to (128-bit, collision-safe across uncoordinated
/// minters) and which span within that trace is currently executing.
struct TraceContext {
  uint64_t Hi = 0, Lo = 0;  ///< 128-bit trace id (0:0 = no trace).
  uint64_t SpanId = 0;      ///< This process's span within the trace.
  uint64_t ParentSpan = 0;  ///< The remote caller's span id (0 = root).

  bool valid() const { return (Hi | Lo) != 0; }

  /// A fresh trace: random-quality ids from pid/clock/counter through the
  /// splitmix64 avalanche (no global coordination, no /dev/urandom).
  static TraceContext mint();

  /// A fresh span id for a child hop of this trace.
  static uint64_t mintSpanId();

  /// 32 lower-case hex chars ("" when invalid).
  std::string traceIdHex() const;
  /// 16 lower-case hex chars of SpanId.
  std::string spanIdHex() const;

  static std::string hex64(uint64_t V);
  static bool parseHex64(const std::string &S, uint64_t &V);
  /// Parses a 32-hex-char trace id. False (and no write) on anything else.
  static bool parseTraceId(const std::string &S, uint64_t &Hi, uint64_t &Lo);
};

/// The calling thread's current trace context (invalid when none is set).
TraceContext currentTrace();

/// RAII scope: installs \p Ctx as the thread's current context for its
/// lifetime (restoring the previous one on exit). Span and emitEvent stamp
/// the current context into flight records and event JSON.
class TraceScope {
public:
  explicit TraceScope(const TraceContext &Ctx) : Prev(currentTrace()) {
    set(Ctx);
  }
  ~TraceScope() { set(Prev); }

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  static void set(const TraceContext &Ctx);
  TraceContext Prev;
};

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

/// One ring slot: plain old data so a fatal-signal handler can format it
/// with nothing but integer arithmetic and write().
struct FlightRecord {
  enum Kind : uint8_t { KSpan = 0, KEvent = 1, KError = 2 };

  int64_t TsUs = 0;   ///< CLOCK_MONOTONIC µs at begin (spans) or emit.
  uint64_t DurUs = 0; ///< Span duration (0 for events).
  uint64_t TraceHi = 0, TraceLo = 0; ///< Trace id (0:0 = untraced record).
  uint64_t Span = 0, Parent = 0;     ///< Current context's span ids.
  uint32_t Tid = 0;                  ///< Kernel thread id of the recorder.
  uint8_t RecKind = KSpan;
  char Name[39] = {}; ///< NUL-terminated, truncated.
};

/// Fixed-size lock-free ring of recent FlightRecords. Writers claim a slot
/// with one fetch_add and publish it with a per-slot sequence number
/// (odd while being written); readers skip slots whose sequence changes
/// under them, so record() is safe from any thread and snapshot() never
/// blocks a writer. No allocation anywhere — the ring is always on.
class FlightRecorder {
public:
  static constexpr size_t Capacity = 1024; // power of two

  /// The process-wide recorder.
  static FlightRecorder &global();

  void record(const FlightRecord &R);

  /// Convenience: stamp \p Ctx + the calling thread into a record.
  void recordSpan(const TraceContext &Ctx, const char *Name, int64_t TsUs,
                  uint64_t DurUs);
  void recordEvent(const TraceContext &Ctx, const char *Name, bool Error);

  /// Records written so far (monotonic).
  uint64_t written() const {
    return Next.load(std::memory_order_relaxed);
  }
  /// Records lost to ring wrap-around (the obs.flightrec-dropped gauge).
  uint64_t dropped() const {
    uint64_t N = written();
    return N > Capacity ? N - Capacity : 0;
  }

  /// Consistent copy of the ring, oldest first. Not async-signal-safe
  /// (allocates); use dumpToFd from signal handlers.
  std::vector<FlightRecord> snapshot() const;

  /// Async-signal-safe JSON dump of the ring to \p Fd: uses only write()
  /// and stack buffers — no malloc, no locks, no stdio. Torn slots are
  /// skipped. Returns false if any write failed.
  bool dumpToFd(int Fd) const;

  /// Arms the crash dump: records \p Path in fixed storage and (first call
  /// only) installs SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that
  /// open it — open(2) is async-signal-safe — dumpToFd the ring, and
  /// re-raise. Re-arming replaces the path; no file exists until a crash
  /// actually dumps, so the success path never touches the filesystem.
  /// False when \p Path does not fit the fixed buffer.
  bool arm(const std::string &Path);
  /// Disarms: the handlers stay installed but become re-raise-only.
  /// Safe to call when not armed.
  void disarm();

private:
  struct Slot {
    std::atomic<uint64_t> Seq{0}; ///< 0 = empty; odd = writing; even = 2n+2.
    FlightRecord R;
  };
  Slot Ring[Capacity];
  std::atomic<uint64_t> Next{0};
};

//===----------------------------------------------------------------------===//
// Trace record rows — the wire/JSON form of a stitched trace
//===----------------------------------------------------------------------===//

/// One row of a stitched trace document: a FlightRecord plus which process
/// recorded it. This is the schema of the "records" arrays in worker
/// replies, daemon trace-op replies, and postmortem files.
struct TraceRecordRow {
  std::string Proc;          ///< "client", "daemon", "worker".
  std::string Name;
  std::string Kind;          ///< "span", "event", "error".
  int64_t TsUs = 0;
  uint64_t DurUs = 0;
  uint64_t Tid = 0;
  uint64_t Hi = 0, Lo = 0;   ///< Trace id.
  uint64_t Span = 0, Parent = 0;
};

/// Converts ring records into rows, keeping only those stamped with the
/// given trace id (pass 0:0 to keep everything, untraced records
/// included).
std::vector<TraceRecordRow> rowsFromRecords(
    const std::vector<FlightRecord> &Recs, const std::string &Proc,
    uint64_t Hi = 0, uint64_t Lo = 0);

/// Writes one row as a JSON object ({"proc":...,"name":...,"ts-us":...}).
void writeTraceRow(JsonWriter &W, const TraceRecordRow &R);
/// Parses what writeTraceRow emits. False on schema violations.
bool parseTraceRow(const json::Value &V, TraceRecordRow &R);

/// Splices `"trace_id":"...","trace":[rows]` into a finished JSON object
/// document (drops the closing brace, appends, re-closes). Reply builders
/// call this after the fact so the shared reply path stays trace-free.
void spliceTraceIntoReply(std::string &Json, const TraceContext &Ctx,
                          const std::vector<TraceRecordRow> &Rows);

/// Renders rows as a Chrome trace_event JSON document (complete "X"
/// events, process_name metadata per Proc) loadable in Perfetto or
/// chrome://tracing.
std::string chromeTraceJson(const std::vector<TraceRecordRow> &Rows);

/// CLOCK_MONOTONIC now, in microseconds (the flight-record time axis).
int64_t traceNowUs();

} // namespace obs
} // namespace atom

#endif // ATOM_OBS_TRACE_H
