//===- obs/Obs.h - Observability: metrics, spans, events --------*- C++ -*-===//
//
// A zero-dependency observability layer for the tool-builder itself. ATOM's
// thesis is that program observability should be cheap to build; this
// subsystem makes the *reproduction* observable the same way:
//
//   Registry   process-wide store of counters, gauges, and log-bucketed
//              histograms, plus a timing tree of phase spans and a list of
//              structured events. Disabled by default: every mutator is a
//              single branch and performs no allocation until enabled.
//   Span       RAII phase timer. Nested spans form a tree ("atom" ->
//              "lift" -> ...); repeated spans with the same name under the
//              same parent accumulate time and count.
//   Event      one structured record (a trap, a recovery re-entry, a
//              truncated trace flush, ...) serialized as a single JSON
//              object per line (JSONL).
//
// The whole registry serializes as one JSON document (counters + gauges +
// histograms + span tree + events) or as a Prometheus-style text
// exposition; fromJson() round-trips the JSON form. Every CLI exposes this
// through --metrics-out (docs/OBSERVABILITY.md).
//
// Thread-safety (docs/PIPELINE.md): every mutator and scalar reader is
// safe to call concurrently — metric maps, the span tree, and the event
// list are guarded by one internal mutex, and each thread keeps its own
// "current span" so nested Span timing stays coherent per thread. Spans
// opened by a thread with none open attach at the registry's thread
// anchor (the root by default); the batched instrumentation driver points
// the anchor at its batch span so worker timings stitch into one tree.
// Reference-returning accessors (counters(), events(), spanRoot(), ...)
// are snapshot APIs: call them only when no other thread is mutating.
// The disabled path is unchanged: a single (atomic) branch, no locking,
// no allocation.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OBS_OBS_H
#define ATOM_OBS_OBS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace atom {
namespace obs {

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

/// Log-bucketed histogram of unsigned values. Bucket 0 holds exactly the
/// value 0; bucket i (1..64) holds values in [2^(i-1), 2^i). Fixed storage,
/// no allocation per sample.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// Bucket index of \p V.
  static unsigned bucketOf(uint64_t V);
  /// Inclusive range [lo, hi] of bucket \p I.
  static uint64_t bucketLo(unsigned I);
  static uint64_t bucketHi(unsigned I);

  void record(uint64_t V);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double mean() const { return Count ? double(Sum) / double(Count) : 0; }
  uint64_t bucketCount(unsigned I) const {
    return I < NumBuckets ? Buckets[I] : 0;
  }

  /// Human-readable rendering: one "[lo, hi] count bar" row per non-empty
  /// bucket, plus a summary line. \p Unit labels the value axis ("bytes").
  std::string render(const std::string &Unit = "") const;

  /// Trace-id exemplar: the most recent sample recorded while a trace
  /// context was current (docs/OBSERVABILITY.md, "Tracing"). Fixed
  /// storage, so the zero-alloc contract is untouched. Not part of
  /// operator== (two runs of the same work carry different trace ids).
  bool hasExemplar() const { return (ExemplarHi | ExemplarLo) != 0; }
  uint64_t exemplarValue() const { return ExemplarValue; }
  uint64_t exemplarTraceHi() const { return ExemplarHi; }
  uint64_t exemplarTraceLo() const { return ExemplarLo; }

  bool operator==(const Histogram &O) const;

private:
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~uint64_t(0);
  uint64_t Max = 0;
  uint64_t Buckets[NumBuckets] = {};
  uint64_t ExemplarValue = 0;
  uint64_t ExemplarHi = 0, ExemplarLo = 0; ///< Trace id (0:0 = none).
  friend class Registry;
};

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

/// Minimal streaming JSON writer (comma management + string escaping).
/// Used by the registry's serializer and by the benchmark emitters.
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(const std::string &K);
  void value(const std::string &V);
  void value(const char *V) { value(std::string(V)); }
  void value(uint64_t V);
  void value(int64_t V);
  void value(double V);
  void value(bool V);

  /// The document built so far; the writer is spent afterwards.
  std::string take() { return std::move(Out); }

  /// Escapes \p S as a JSON string literal (with quotes).
  static std::string quote(const std::string &S);
  /// Stable text form of a double (round-trips through strtod).
  static std::string number(double V);

private:
  void comma();
  std::string Out;
  std::vector<bool> NeedComma; ///< One per open container.
  bool PendingKey = false;
};

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

/// One structured event, e.g. Event("trap").str("kind", "bad-pc")
/// .num("pc", 0x2000000). Serializes as {"event":"trap","kind":...}.
class Event {
public:
  Event() = default;
  explicit Event(std::string Kind) : Kind(std::move(Kind)) {}

  Event &str(const std::string &Name, const std::string &V);
  Event &num(const std::string &Name, uint64_t V);
  Event &flt(const std::string &Name, double V);
  Event &boolean(const std::string &Name, bool V);

  const std::string &kind() const { return Kind; }

  /// The event as a single-line JSON object (no trailing newline).
  std::string jsonLine() const;

  bool operator==(const Event &O) const;

private:
  struct Field {
    enum Type { TStr, TNum, TFlt, TBool };
    std::string Name;
    Type Ty = TStr;
    std::string Str;
    uint64_t Num = 0;
    double Flt = 0;
    bool Bool = false;
    bool operator==(const Field &O) const;
  };
  std::string Kind;
  std::vector<Field> Fields;
  friend class Registry;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

class Registry {
public:
  /// One node of the phase-span timing tree.
  struct SpanNode {
    std::string Name;
    double Seconds = 0;
    uint64_t Count = 0; ///< Times a span with this name/parent was opened.
    std::string Thread; ///< currentThreadName() of the opener at creation,
                        ///< when that thread was named ("" otherwise).
    std::vector<std::unique_ptr<SpanNode>> Children;
  };

  Registry();

  /// The process-wide registry. Disabled until a CLI or bench opts in.
  static Registry &global();

  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops all metrics, spans, and events (keeps the enabled flag) and
  /// invalidates every thread's span state. Do not call while spans are
  /// open on other threads.
  void reset();

  // Metrics. All no-ops (no allocation, no entry creation) when disabled.
  void addCounter(const std::string &Name, uint64_t Delta = 1);
  void setGauge(const std::string &Name, double V);
  void recordValue(const std::string &Name, uint64_t V);

  uint64_t counter(const std::string &Name) const;
  const Histogram *histogram(const std::string &Name) const;
  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }

  // Events.
  void emitEvent(Event E);
  const std::vector<Event> &events() const { return Events; }
  /// Mirror every event to \p F as one JSON line, as it is emitted
  /// (nullptr to stop). The stream is not owned.
  void setEventStream(std::FILE *F) { EventStream = F; }

  // Spans.
  const SpanNode &spanRoot() const { return Root; }
  bool hasSpans() const { return !Root.Children.empty(); }

  /// Makes the calling thread's innermost open span the attachment point
  /// for spans opened by threads that have none open. The batched driver
  /// calls this right after opening its batch-root span so every worker's
  /// pipeline spans stitch in under it. Invalidates all threads' span
  /// state — call only between phases, never concurrent with open worker
  /// spans.
  void anchorThreadsAtCurrent();
  /// Restores the default anchor (spans from fresh threads attach at the
  /// root). Same invalidation caveat as anchorThreadsAtCurrent().
  void anchorThreadsAtRoot();

  /// Entries/nodes/events created so far. Stays 0 while disabled — the
  /// "disabled means zero allocations" contract, enforced by tests.
  uint64_t allocations() const {
    std::lock_guard<std::mutex> L(Mu);
    return Allocs;
  }

  /// The whole registry as one JSON document.
  std::string toJson() const;
  /// Prometheus-style text exposition (counters, gauges, histogram
  /// buckets, span seconds/counts with a path label). Exemplar suffixes
  /// are OpenMetrics-only syntax — the classic text/plain parser rejects
  /// them — so they appear (with the closing `# EOF`) only when the
  /// scraper negotiated OpenMetrics.
  std::string toPrometheus(bool OpenMetrics = false) const;
  /// Indented per-phase timing tree (what `atom --stats` prints).
  std::string timingTree() const;

  /// Parses a document produced by toJson() back into \p Out (which is
  /// reset and left enabled). Returns false with \p Err on malformed or
  /// schema-violating input.
  static bool fromJson(const std::string &Text, Registry &Out,
                       std::string &Err);

private:
  friend class Span;

  /// The calling thread's current span parent for this registry: its
  /// thread-local entry if still valid, the anchor otherwise. Requires Mu.
  SpanNode *threadParent();

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu; ///< Guards everything below except TlsEpoch.
  uint64_t Allocs = 0;

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::vector<Event> Events;
  std::FILE *EventStream = nullptr;

  SpanNode Root{"root", 0, 0, {}, {}};
  /// Where spans from threads with no valid span state attach.
  SpanNode *Anchor = &Root;
  /// Distinguishes this registry in thread-local span state, surviving
  /// address reuse after destruction.
  uint64_t Id = 0;
  /// Bumped whenever per-thread span state becomes stale (reset, anchor
  /// moves); threads re-resolve their parent from Anchor on mismatch.
  std::atomic<uint64_t> TlsEpoch{1};
  /// Bumped by reset() only: an open Span skips its node update when the
  /// tree it opened into no longer exists.
  uint64_t ResetCount = 0;
};

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

/// RAII phase timer. Opening a span makes it the calling thread's current
/// parent; closing adds the elapsed wall-clock time to its node. No-op
/// (and no allocation) when the registry is disabled at open time.
class Span {
public:
  explicit Span(const char *Name) : Span(Registry::global(), Name) {}
  Span(Registry &R, const char *Name);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  using Clock = std::chrono::steady_clock;
  Registry *Reg = nullptr;             ///< nullptr: disabled at open.
  Registry::SpanNode *Node = nullptr;  ///< This span's tree node.
  Registry::SpanNode *Saved = nullptr; ///< Parent to restore on close.
  uint64_t ResetAtOpen = 0; ///< Tree generation; stale means Node is gone.
  Clock::time_point Start;
};

/// RAII worker-span stitching for a parallel phase: anchors new threads'
/// spans at the caller's current span, restoring the root anchor on exit.
class ThreadSpanAnchor {
public:
  explicit ThreadSpanAnchor(Registry &R) : Reg(R) {
    R.anchorThreadsAtCurrent();
  }
  ~ThreadSpanAnchor() { Reg.anchorThreadsAtRoot(); }

  ThreadSpanAnchor(const ThreadSpanAnchor &) = delete;
  ThreadSpanAnchor &operator=(const ThreadSpanAnchor &) = delete;

private:
  Registry &Reg;
};

} // namespace obs
} // namespace atom

#endif // ATOM_OBS_OBS_H
