//===- obs/Json.h - Minimal JSON value tree and parser ----------*- C++ -*-===//
//
// The zero-dependency JSON reader that backs obs::Registry::fromJson(),
// exposed so other subsystems can parse small JSON documents (the atomd
// request protocol, docs/DAEMON.md) without growing a dependency. The
// matching writer is obs::JsonWriter (Obs.h).
//
// Numbers keep their raw text so 64-bit counters survive a round trip
// exactly; callers pick the interpretation (asU64/asI64/asDouble).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OBS_JSON_H
#define ATOM_OBS_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace atom {
namespace obs {
namespace json {

/// A parsed JSON value. Object members keep their document order.
struct Value {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  std::string Text; ///< Num: raw literal. Str: decoded contents.
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;

  /// Looks up an object member; nullptr if absent (or not an object).
  const Value *find(const std::string &Key) const {
    for (const auto &[K2, V] : Members)
      if (K2 == Key)
        return &V;
    return nullptr;
  }

  uint64_t asU64() const;
  int64_t asI64() const;
  double asDouble() const;
  /// True when the numeric literal has no fraction or exponent.
  bool isIntText() const {
    return Text.find_first_of(".eE") == std::string::npos;
  }

  // Typed member accessors with defaults, for protocol-style documents.
  std::string str(const std::string &Key,
                  const std::string &Default = "") const {
    const Value *V = find(Key);
    return V && V->K == Str ? V->Text : Default;
  }
  uint64_t u64(const std::string &Key, uint64_t Default = 0) const {
    const Value *V = find(Key);
    return V && V->K == Num ? V->asU64() : Default;
  }
  bool boolean(const std::string &Key, bool Default = false) const {
    const Value *V = find(Key);
    return V && V->K == Bool ? V->B : Default;
  }
};

/// Parses \p Text into \p Out. Returns false with a position-carrying
/// message in \p Err on malformed input. Containers may nest at most 64
/// deep ("nesting too deep"), so arbitrarily hostile input cannot
/// overflow the parser's stack.
bool parse(const std::string &Text, Value &Out, std::string &Err);

} // namespace json
} // namespace obs
} // namespace atom

#endif // ATOM_OBS_JSON_H
