//===- sim/Syscalls.cpp ---------------------------------------------------===//

#include "sim/Syscalls.h"

using namespace atom;
using namespace atom::sim;

Vfs::Vfs() {
  // fds 0..2 are stdin/stdout/stderr.
  Fds.resize(3);
  Fds[0] = {"<stdin>", 0, false, true};
  Fds[1] = {"<stdout>", 0, true, true};
  Fds[2] = {"<stderr>", 0, true, true};
}

int64_t Vfs::open(const std::string &Path, uint64_t Flags) {
  if (takeInjectedError())
    return -1;
  if (Path.empty())
    return -1;
  if (Flags == OpenWriteCreate) {
    Files[Path].clear();
  } else if (Flags == OpenAppend) {
    Files[Path]; // create if absent
  } else if (!Files.count(Path)) {
    return -1;
  }
  OpenFile F;
  F.Path = Path;
  F.Pos = Flags == OpenAppend ? Files[Path].size() : 0;
  F.Writable = Flags != OpenRead;
  F.Open = true;
  for (size_t I = 3; I < Fds.size(); ++I) {
    if (!Fds[I].Open) {
      Fds[I] = F;
      return int64_t(I);
    }
  }
  Fds.push_back(F);
  return int64_t(Fds.size() - 1);
}

int64_t Vfs::close(int64_t Fd) {
  if (takeInjectedError())
    return -1;
  if (Fd < 3 || Fd >= int64_t(Fds.size()) || !Fds[size_t(Fd)].Open)
    return -1;
  Fds[size_t(Fd)].Open = false;
  return 0;
}

int64_t Vfs::write(int64_t Fd, const std::vector<uint8_t> &Data) {
  if (takeInjectedError())
    return -1;
  if (Fd < 0 || Fd >= int64_t(Fds.size()) || !Fds[size_t(Fd)].Open)
    return -1;
  if (Fd == 1) {
    StdoutBuf.append(Data.begin(), Data.end());
    return int64_t(Data.size());
  }
  if (Fd == 2) {
    StderrBuf.append(Data.begin(), Data.end());
    return int64_t(Data.size());
  }
  OpenFile &F = Fds[size_t(Fd)];
  if (!F.Writable)
    return -1;
  std::vector<uint8_t> &Contents = Files[F.Path];
  if (F.Pos + Data.size() > Contents.size())
    Contents.resize(F.Pos + Data.size());
  std::copy(Data.begin(), Data.end(), Contents.begin() + long(F.Pos));
  F.Pos += Data.size();
  return int64_t(Data.size());
}

int64_t Vfs::read(int64_t Fd, uint64_t N, std::vector<uint8_t> &Out) {
  Out.clear();
  if (takeInjectedError())
    return -1;
  if (Fd < 0 || Fd >= int64_t(Fds.size()) || !Fds[size_t(Fd)].Open)
    return -1;
  if (Fd == 0)
    return 0; // stdin is always empty
  OpenFile &F = Fds[size_t(Fd)];
  if (F.Writable)
    return -1;
  auto It = Files.find(F.Path);
  if (It == Files.end())
    return -1;
  const std::vector<uint8_t> &Contents = It->second;
  uint64_t Avail = F.Pos < Contents.size() ? Contents.size() - F.Pos : 0;
  uint64_t Take = std::min(N, Avail);
  Out.assign(Contents.begin() + long(F.Pos),
             Contents.begin() + long(F.Pos + Take));
  F.Pos += Take;
  return int64_t(Take);
}

void Vfs::addFile(const std::string &Path, const std::string &Contents) {
  Files[Path].assign(Contents.begin(), Contents.end());
}

std::string Vfs::fileContents(const std::string &Path) const {
  auto It = Files.find(Path);
  if (It == Files.end())
    return "";
  return std::string(It->second.begin(), It->second.end());
}
