//===- sim/Machine.h - AXP64-lite machine simulator -------------*- C++ -*-===//
//
// Interprets linked executables. Plays the role of the Alpha CPU in this
// reproduction: both the uninstrumented and the ATOM-instrumented
// executables run here, so instrumented/uninstrumented instruction-count
// ratios stand in for the paper's execution-time ratios (Figure 6).
//
// The simulator can also record a reference trace (per-instruction hook)
// which the test suite uses as an oracle for tool outputs.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_MACHINE_H
#define ATOM_SIM_MACHINE_H

#include "isa/Isa.h"
#include "obj/ObjectModule.h"
#include "sim/Syscalls.h"

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>

namespace atom {
namespace sim {

/// Why run() returned.
enum class RunStatus {
  Exited,        ///< Program called exit().
  Halted,        ///< Executed a halt instruction.
  Fault,         ///< Bad instruction, bad PC, or similar.
  FuelExhausted, ///< MaxInsts executed without exiting.
};

struct RunResult {
  RunStatus Status = RunStatus::Fault;
  int64_t ExitCode = -1;
  uint64_t FaultPC = 0;
  std::string FaultMessage;

  bool exitedWith(int64_t Code) const {
    return Status == RunStatus::Exited && ExitCode == Code;
  }
};

/// Dynamic execution statistics.
struct Stats {
  uint64_t Instructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t CondBranches = 0;
  uint64_t TakenBranches = 0;
  uint64_t Calls = 0;
  uint64_t Returns = 0;
  uint64_t Syscalls = 0;
  uint64_t UnalignedAccesses = 0;
  std::array<uint64_t, size_t(isa::Opcode::NumOpcodes)> PerOpcode{};
};

/// One retired instruction, as seen by the trace hook.
struct TraceEvent {
  uint64_t PC = 0;
  isa::Inst I;
  uint64_t EffAddr = 0; ///< Loads/stores: effective address. Branches and
                        ///< jumps (br/bsr/jmp/jsr/ret): transfer target.
                        ///< callsys: the syscall number.
  bool Taken = false;   ///< Conditional branches: taken?
};

/// Sparse byte-addressable memory with 8 KB pages.
class Memory {
public:
  uint8_t load8(uint64_t Addr);
  uint16_t load16(uint64_t Addr);
  uint32_t load32(uint64_t Addr);
  uint64_t load64(uint64_t Addr);
  void store8(uint64_t Addr, uint8_t V);
  void store16(uint64_t Addr, uint16_t V);
  void store32(uint64_t Addr, uint32_t V);
  void store64(uint64_t Addr, uint64_t V);
  void writeBytes(uint64_t Addr, const uint8_t *Src, size_t N);
  void readBytes(uint64_t Addr, uint8_t *Dst, size_t N);

private:
  uint8_t *pagePtr(uint64_t Addr);
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Pages;
  uint64_t CachedPage = ~uint64_t(0);
  uint8_t *CachedPtr = nullptr;
};

/// The simulated machine.
class Machine {
public:
  /// Loads \p Exe: copies text/data into memory, zeroes bss, pre-decodes
  /// text, initializes sp to Exe.StackStart and pc to Exe.Entry.
  explicit Machine(const obj::Executable &Exe);

  /// Runs until exit/halt/fault or \p MaxInsts instructions.
  RunResult run(uint64_t MaxInsts = 2'000'000'000);

  uint64_t reg(unsigned R) const { return Regs[R]; }
  void setReg(unsigned R, uint64_t V) {
    if (R != isa::RegZero)
      Regs[R] = V;
  }
  uint64_t pc() const { return PC; }
  void setPC(uint64_t V) { PC = V; }

  Memory &memory() { return Mem; }
  Vfs &vfs() { return Fs; }
  const Stats &stats() const { return St; }

  /// Installs a per-retired-instruction hook (the test oracle). Slows
  /// execution; leave unset for benchmarks.
  void setTraceHook(std::function<void(const TraceEvent &)> Hook) {
    Trace = std::move(Hook);
  }

private:
  RunResult fault(const std::string &Msg);

  uint64_t Regs[isa::NumRegs] = {};
  uint64_t PC = 0;
  Memory Mem;
  Vfs Fs;
  Stats St;
  std::function<void(const TraceEvent &)> Trace;

  uint64_t TextStart = 0;
  std::vector<isa::Inst> Decoded; ///< Pre-decoded text.
  std::vector<bool> DecodeOk;
};

/// Convenience: builds a machine, runs it, returns the result.
RunResult runExecutable(const obj::Executable &Exe, Machine *Out = nullptr);

} // namespace sim
} // namespace atom

#endif // ATOM_SIM_MACHINE_H
