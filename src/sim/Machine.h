//===- sim/Machine.h - AXP64-lite machine simulator -------------*- C++ -*-===//
//
// Interprets linked executables. Plays the role of the Alpha CPU in this
// reproduction: both the uninstrumented and the ATOM-instrumented
// executables run here, so instrumented/uninstrumented instruction-count
// ratios stand in for the paper's execution-time ratios (Figure 6).
//
// The simulator can also record a reference trace (per-instruction hook)
// which the test suite uses as an oracle for tool outputs.
//
// Faults are precise: a trapping instruction never retires, the trap kind
// and effective address are carried in RunResult, and memory is protected
// per region (read-only text, unmapped null page, stack guard page), so a
// wild store traps instead of silently materializing a page.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_MACHINE_H
#define ATOM_SIM_MACHINE_H

#include "isa/Isa.h"
#include "obj/ObjectModule.h"
#include "sim/Syscalls.h"

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>

namespace atom {
namespace sim {

namespace dbt {
class DbtTier;
struct DbtPerf;
} // namespace dbt

/// Why run() returned.
enum class RunStatus {
  Exited,        ///< Program called exit().
  Halted,        ///< Executed a halt instruction.
  Trap,          ///< Machine fault; RunResult::Trap says which kind.
  FuelExhausted, ///< MaxInsts executed without exiting.
};

/// Precise trap taxonomy. Every RunStatus::Trap carries one of these.
enum class TrapKind : uint8_t {
  None = 0,           ///< Not a trap.
  IllegalInstruction, ///< Fetched word does not decode.
  BadPC,              ///< PC outside text or misaligned.
  UnmappedAccess,     ///< Load/store to an unmapped address.
  WriteProtected,     ///< Store to a read-only region (text).
  Unaligned,          ///< Misaligned access under strict alignment.
  StackGuard,         ///< Access in the guard page below the stack.
  Arithmetic,         ///< Integer divide by zero (when trapping).
  BadSyscall,         ///< Unknown system call number.
};

/// Stable lower-case name of \p K ("unmapped-access", ...).
const char *trapKindName(TrapKind K);

struct RunResult {
  RunStatus Status = RunStatus::Trap;
  int64_t ExitCode = -1;
  uint64_t FaultPC = 0;
  TrapKind Trap = TrapKind::None;
  uint64_t FaultAddr = 0; ///< Effective address for memory traps, target
                          ///< PC for BadPC, syscall number for BadSyscall.
  std::string FaultMessage;

  bool exitedWith(int64_t Code) const {
    return Status == RunStatus::Exited && ExitCode == Code;
  }
};

/// Execution knobs. Defaults preserve the historical semantics of every
/// workload: protection on (wild accesses trap), lenient alignment, and
/// divide-by-zero producing 0 as before.
struct MachineOptions {
  bool MemoryProtection = true;
  bool StrictAlignment = false;
  bool TrapOnDivideByZero = false;
  uint64_t StackMaxBytes = 8 * 1024 * 1024; ///< Guard page sits below this.
  /// Mapped heap headroom past the static image: the read/write region ends
  /// at HeapStart + HeapMaxBytes instead of 2^64, so a wild pointer (or a
  /// guest-controlled syscall length) far past the break traps as
  /// UnmappedAccess instead of being treated as mapped. 0 = unbounded
  /// (the pre-fault-precision behavior).
  uint64_t HeapMaxBytes = 256 * 1024 * 1024;
  /// Use the fused fast-path run loop when no trace hook, profile, or
  /// pre-instruction hook is armed. Semantics are identical either way
  /// (ctest-enforced); off is useful for differential runs and benchmarks.
  bool EnableFastPath = true;
  /// Dynamic binary translation: lower hot basic blocks to host machine
  /// code (docs/DBT.md). Subject to the same arming gate as the fast path
  /// plus host support; observable behavior is identical to the
  /// interpreter (ctest-enforced). `axp-run --no-dbt` clears this;
  /// ATOM_SIM_DBT=off|force overrides from the environment.
  bool EnableDbt = true;
  /// Block execution count after which the DBT tier translates it.
  uint32_t DbtThreshold = 16;
};

/// Dynamic execution statistics.
struct Stats {
  uint64_t Instructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t CondBranches = 0;
  uint64_t TakenBranches = 0;
  uint64_t Calls = 0;
  uint64_t Returns = 0;
  uint64_t Syscalls = 0;
  uint64_t UnalignedAccesses = 0;
  std::array<uint64_t, size_t(isa::Opcode::NumOpcodes)> PerOpcode{};
};

/// One retired instruction, as seen by the trace hook.
struct TraceEvent {
  uint64_t PC = 0;
  isa::Inst I;
  uint64_t EffAddr = 0; ///< Loads/stores: effective address. Branches and
                        ///< jumps (br/bsr/jmp/jsr/ret): transfer target.
                        ///< callsys: the syscall number.
  bool Taken = false;   ///< Conditional branches: taken?
};

/// Sparse byte-addressable memory with 8 KB pages and optional per-region
/// permissions. Protection is off until enableProtection() — the loader
/// writes the image first — and violations are recorded (first one wins)
/// rather than thrown, so the machine can turn them into precise traps.
///
/// Two layers keep the common case fast without weakening the precise-fault
/// contract:
///
///   - a small direct-mapped translation cache (page -> host pointer +
///     effective permissions + the in-page byte range they cover), consulted
///     by the scalar load*/store* entry points so a hit is one mask, one
///     compare, and one memcpy with no region search or page-hash probe;
///   - bulk readBytes/writeBytes pre-validate the whole range (recording the
///     precise first faulting byte on failure, with **no** side effects),
///     then copy one page-sized span at a time.
class Memory {
public:
  enum Perm : uint8_t {
    PermNone = 0,
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
  };

  struct MemFault {
    bool Faulted = false;
    uint64_t Addr = 0;
    bool IsWrite = false;
    TrapKind Kind = TrapKind::None;
  };

  /// Hot-path instrumentation, published as sim.* obs counters by axp-run.
  struct Perf {
    uint64_t TransHits = 0;      ///< Scalar accesses served by the cache.
    uint64_t TransMisses = 0;    ///< Scalar accesses that took the slow path.
    uint64_t TransFills = 0;     ///< Cache entries (re)installed.
    uint64_t TransInvalidations = 0; ///< Whole-cache flushes.
    uint64_t TransRangedInvalidations = 0; ///< Page-ranged evictions.
    uint64_t BulkSpans = 0;      ///< memcpy spans in read/writeBytes.
    uint64_t BulkBytes = 0;      ///< Bytes moved by read/writeBytes.
  };

  /// Declares [Start, End) with \p Perms. \p Kind is the trap reported
  /// when an access violates the region's permissions (e.g. StackGuard
  /// for the guard page, WriteProtected for text). Regions must not
  /// overlap; addresses covered by no region trap as UnmappedAccess.
  void addRegion(uint64_t Start, uint64_t End, uint8_t Perms,
                 TrapKind Kind = TrapKind::UnmappedAccess);
  void enableProtection() {
    ProtectionOn = true;
    invalidateTranslation(); // entries filled while loading were RW-everything
  }
  bool protectionEnabled() const { return ProtectionOn; }

  const MemFault &memFault() const { return Fault; }
  void clearMemFault() { Fault = MemFault(); }

  /// True if the whole range [Addr, Addr+N) is accessible; otherwise records
  /// the precise first faulting byte (first-fault-wins) and returns false.
  /// Performs no side effects either way. N == 0 is trivially valid.
  bool validRange(uint64_t Addr, uint64_t N, bool IsWrite) {
    return !ProtectionOn || N == 0 || allowed(Addr, N, IsWrite);
  }

  uint8_t load8(uint64_t Addr);
  uint16_t load16(uint64_t Addr);
  uint32_t load32(uint64_t Addr);
  uint64_t load64(uint64_t Addr);
  void store8(uint64_t Addr, uint8_t V);
  void store16(uint64_t Addr, uint16_t V);
  void store32(uint64_t Addr, uint32_t V);
  void store64(uint64_t Addr, uint64_t V);

  /// Bulk copies. The whole range is validated up front: on a violation the
  /// precise first faulting byte is recorded and **nothing** is copied (no
  /// partial prefix, no page materialization), honoring the same
  /// never-retires contract as scalar accesses. Valid ranges are copied one
  /// page-sized span at a time.
  void writeBytes(uint64_t Addr, const uint8_t *Src, size_t N);
  void readBytes(uint64_t Addr, uint8_t *Dst, size_t N);

  /// Unchecked write that ignores permissions (machine-internal: decode
  /// corruption keeps the text image coherent through this).
  void poke32(uint64_t Addr, uint32_t V);

  /// Drops every translation-cache entry. Called whenever effective
  /// permissions may have changed wholesale (addRegion, enableProtection).
  void invalidateTranslation();
  /// Drops only the entries whose page intersects [Lo, Hi) — text
  /// corruption of one word no longer evicts unrelated entries. Both
  /// forms notify the invalidation listener (the DBT tier) with the same
  /// range, so every translation layer sees one event stream.
  void invalidateTranslation(uint64_t Lo, uint64_t Hi);

  /// Subscribes \p L to translation-invalidation events; called with the
  /// affected [Lo, Hi) range (full flushes pass [0, ~0)).
  void setInvalidationListener(std::function<void(uint64_t, uint64_t)> L) {
    InvalListener = std::move(L);
  }

  /// Accessible span around \p Addr for the DBT inline TLB: sets [Lo, Hi)
  /// to the maximal subrange of Addr's page that contains Addr and is
  /// covered by one region with \p IsWrite permission, and returns the
  /// host pointer for Lo. Clamped to the page because guest pages are not
  /// host-contiguous. Null when Addr itself is inaccessible; never
  /// records a fault.
  uint8_t *spanFor(uint64_t Addr, bool IsWrite, uint64_t &Lo, uint64_t &Hi);

  const Perf &perf() const { return P; }

private:
  struct Region {
    uint64_t Start = 0;
    uint64_t End = 0;
    uint8_t Perms = PermNone;
    TrapKind Kind = TrapKind::UnmappedAccess;
  };

  /// One direct-mapped translation-cache entry: within page PageBase, byte
  /// offsets [Lo, Hi) are backed by Host and carry Perms. Lo/Hi matter
  /// because region boundaries need not be page-aligned.
  struct TransEntry {
    uint64_t PageBase = ~uint64_t(0);
    uint8_t *Host = nullptr;
    uint32_t Lo = 0;
    uint32_t Hi = 0;
    uint8_t Perms = PermNone;
  };
  static constexpr size_t TransSlots = 64; // power of two

  size_t transIndex(uint64_t Addr) const {
    return size_t(Addr / obj::PageSize) & (TransSlots - 1);
  }
  /// Installs the entry for Addr's page after a successful slow-path check
  /// (LastRegion covers Addr, or protection is off).
  void fillTranslation(uint64_t Addr);

  /// Fast-path permission check; falls back to the region search.
  bool allowed(uint64_t Addr, uint64_t Size, bool IsWrite) {
    if (!ProtectionOn)
      return true;
    if (LastRegion != size_t(-1)) {
      const Region &R = Regions[LastRegion];
      if (Addr >= R.Start && Addr < R.End && Size <= R.End - Addr)
        return (R.Perms & (IsWrite ? PermWrite : PermRead)) != 0 ||
               (recordFault(Addr, IsWrite, R.Kind), false);
    }
    return allowedSlow(Addr, Size, IsWrite);
  }
  bool allowedSlow(uint64_t Addr, uint64_t Size, bool IsWrite);
  void recordFault(uint64_t Addr, bool IsWrite, TrapKind Kind);

  uint8_t *pagePtr(uint64_t Addr);
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Pages;
  uint64_t CachedPage = ~uint64_t(0);
  uint8_t *CachedPtr = nullptr;

  TransEntry Trans[TransSlots];

  std::vector<Region> Regions; ///< Sorted by Start, non-overlapping.
  size_t LastRegion = size_t(-1);
  bool ProtectionOn = false;
  MemFault Fault;
  Perf P;
  std::function<void(uint64_t, uint64_t)> InvalListener;
};

/// The simulated machine.
class Machine {
public:
  /// Loads \p Exe: copies text/data into memory, zeroes bss, pre-decodes
  /// text, initializes sp to Exe.StackStart and pc to Exe.Entry, and (per
  /// \p Opts) arms region protection around the loaded image.
  explicit Machine(const obj::Executable &Exe,
                   const MachineOptions &Opts = MachineOptions());
  ~Machine();
  Machine(Machine &&);
  Machine &operator=(Machine &&);

  /// Runs until exit/halt/trap or \p MaxInsts instructions.
  RunResult run(uint64_t MaxInsts = 2'000'000'000);

  uint64_t reg(unsigned R) const { return Regs[R]; }
  void setReg(unsigned R, uint64_t V) {
    if (R != isa::RegZero)
      Regs[R] = V;
  }
  uint64_t pc() const { return PC; }
  void setPC(uint64_t V) {
    PC = V;
    ProfNextLeader = true; // an explicit PC change starts a new block
  }

  Memory &memory() { return Mem; }
  Vfs &vfs() { return Fs; }
  const Stats &stats() const { return St; }
  const MachineOptions &options() const { return Opts; }

  /// Installs a per-retired-instruction hook (the test oracle). Slows
  /// execution; leave unset for benchmarks.
  void setTraceHook(std::function<void(const TraceEvent &)> Hook) {
    Trace = std::move(Hook);
  }

  /// Turns on the per-basic-block hotness profile: every block-leader PC
  /// (program entry, any control-transfer target or fall-through) counts
  /// one execution each time it retires. Costs one branch per instruction
  /// plus a hash update per block entry; off by default.
  void enableBlockProfile() { ProfileOn = true; }
  bool blockProfileEnabled() const { return ProfileOn; }
  /// Block-leader PC -> times that block started executing.
  const std::unordered_map<uint64_t, uint64_t> &blockProfile() const {
    return BlockCounts;
  }

  /// Arms \p Hook to run once when the retired-instruction count reaches
  /// \p ICount, before the next instruction executes (the fault-injection
  /// mechanism; costs one compare per instruction when armed).
  void addPreInstHook(uint64_t ICount, std::function<void(Machine &)> Hook);

  /// Extent of the static data image [DataStart, DataStart + data + bss);
  /// the fault injector's memory-corruption target window.
  uint64_t dataStart() const { return DataStart; }
  uint64_t dataEnd() const { return DataEnd; }

  /// Number of pre-decoded text words.
  size_t textWordCount() const { return Decoded.size(); }
  /// Base address of the text image.
  uint64_t textStart() const { return TextStart; }
  /// Pre-decoded text word \p Idx (DBT block discovery / stat replay).
  const isa::Inst &decodedWord(size_t Idx) const { return Decoded[Idx]; }
  bool decodeOkWord(size_t Idx) const { return DecodeOk[Idx] != 0; }
  /// XORs text word \p Idx with \p Mask, re-decodes it, and writes the
  /// corrupted word through to the memory image (so loads from text see it)
  /// — invalidating the translation cache (decode-stream corruption for
  /// fault injection).
  void corruptTextWord(size_t Idx, uint32_t Mask);

  /// Loop-dispatch instrumentation: how many times run() entered the fused
  /// fast-path loop vs. fell back to the fully-checked slow loop.
  struct LoopPerf {
    uint64_t FastEntries = 0;
    uint64_t SlowEntries = 0;
  };
  const LoopPerf &loopPerf() const { return LP; }

  /// DBT tier observability counters, or null if the tier never ran.
  const dbt::DbtPerf *dbtPerf() const;
  /// The tier itself (tests); null until the first DBT-dispatched run.
  dbt::DbtTier *dbtTier() { return DbtT.get(); }

private:
  friend class dbt::DbtTier;

  RunResult trap(TrapKind Kind, uint64_t Addr, const std::string &Msg);
  RunResult memTrap();
  void runPendingHooks();

  /// The interpreter. Fast = true elides the per-instruction trace /
  /// profile / pre-inst-hook checks and batches Stats updates (committed at
  /// every exit), legal only when none of those are armed; Fast = false is
  /// the fully-checked loop with per-instruction semantics. BlockStep
  /// stops after the first retired control transfer (returning
  /// FuelExhausted with SteppedBlockEnd set) so the DBT dispatcher can
  /// interpret cold code one basic block at a time.
  template <bool Fast, bool BlockStep = false>
  RunResult runLoop(uint64_t MaxInsts);

  /// The DBT dispatcher: alternates translated-block execution with
  /// block-stepped interpretation; precise events re-execute in the
  /// checked loop (docs/DBT.md).
  RunResult runDbt(uint64_t MaxInsts);

  uint64_t Regs[isa::NumRegs] = {};
  uint64_t PC = 0;
  Memory Mem;
  Vfs Fs;
  Stats St;
  MachineOptions Opts;
  std::function<void(const TraceEvent &)> Trace;

  struct PendingHook {
    uint64_t At = 0;
    std::function<void(Machine &)> Fn;
  };
  std::vector<PendingHook> Hooks;
  uint64_t NextHookAt = ~uint64_t(0);

  bool ProfileOn = false;
  bool ProfNextLeader = true; ///< Next retired instruction starts a block.
  std::unordered_map<uint64_t, uint64_t> BlockCounts;

  LoopPerf LP;

  uint64_t TextStart = 0;
  uint64_t DataStart = 0;
  uint64_t DataEnd = 0;
  std::vector<uint32_t> TextWords;
  std::vector<isa::Inst> Decoded;  ///< Pre-decoded text.
  std::vector<uint8_t> DecodeOk;   ///< Byte-sized: no bit-probe per fetch.

  /// Lazily created by the first runDbt entry; unique_ptr keeps the
  /// tier's address stable across Machine moves (attach() re-points it).
  std::unique_ptr<dbt::DbtTier> DbtT;
  /// Set by runLoop<.., BlockStep> when it returned at a block boundary
  /// rather than from genuine fuel exhaustion.
  bool SteppedBlockEnd = false;
};

/// Convenience: builds a machine, runs it, returns the result.
RunResult runExecutable(const obj::Executable &Exe, Machine *Out = nullptr);

} // namespace sim
} // namespace atom

#endif // ATOM_SIM_MACHINE_H
