//===- sim/dbt/Dbt.h - Dynamic-binary-translation tier ----------*- C++ -*-===//
//
// Translates hot axp basic blocks to host x86-64 machine code in an
// mmap'd W^X code cache, entered from Machine::run once a block's
// execution count crosses MachineOptions::DbtThreshold. Everything
// precise — traps, syscalls, protection faults, strict-alignment checks,
// fuel exhaustion — exits back to the checked interpreter loop, so the
// docs/FAULTS.md contract is preserved verbatim and the interpreter
// remains the oracle (ctest-enforced equality of RunResult, Stats and
// PerOpcode on every workload and fault test).
//
// Architecture (DynamoRIO/Pin-style, see PAPERS.md):
//
//   Machine::runDbt  — the dispatcher: looks up the translated block for
//                      the current PC, executes it, and interprets one
//                      basic block at a time (runLoop block-step mode)
//                      until a block gets hot.
//   TranslatedBlock  — a trace: straight-line guest code extended through
//                      unconditional branches/calls and the likely side
//                      of conditional branches (backward = taken); the
//                      unfollowed side becomes a counted exit edge.
//                      Instructions that must stay precise (callsys,
//                      halt, undecodable words) end the trace *before*
//                      themselves; indirect transfers end it *after*.
//   Fixed-map regalloc — the three most-referenced guest registers of a
//                      block are pinned in host callee-saved registers
//                      (rbx/rbp/r12) for the block's duration; all other
//                      guest registers live in the Machine's register
//                      array, addressed off r14.
//   Inline TLB       — aligned loads/stores probe a 256-entry
//                      direct-mapped span TLB (accessible guest range +
//                      host bias per page, handling partial pages) inline;
//                      misses, unaligned accesses, and divides call out
//                      to C++ helpers that reuse sim::Memory, so the
//                      precise-fault semantics are the interpreter's own.
//   Chaining         — direct-branch exits are patched to jump straight
//                      to the successor's translation once both sides
//                      exist, so hot loops never leave the cache.
//
// Statistics are *not* counted per instruction: each trace keeps one
// counter per exit edge, each edge knows the static stat sums of its
// retired prefix, and the dispatcher folds count x prefix into
// sim::Stats when the run leaves the tier, which is what makes
// translated execution fast while remaining bit-identical to the
// interpreter's accounting. A faulting instruction side-exits with its
// trace index; the dispatcher commits the retired prefix and re-executes
// the faulting instruction in the checked loop, which re-discovers the
// identical trap.
//
// The tier subscribes to the same invalidation events as the scalar
// translation cache (region-map changes, enableProtection,
// corruptTextWord): a ranged event drops exactly the translated blocks
// and TLB pages it intersects.
//
// Host support: x86-64 only. On other hosts supported() is false and
// Machine::run falls back to the interpreter fast path.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_DBT_DBT_H
#define ATOM_SIM_DBT_DBT_H

#include "isa/Isa.h"
#include "sim/Machine.h"

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace atom {
namespace sim {
namespace dbt {

/// One direct-mapped software-TLB entry: the accessible *span* of one
/// guest page (region boundaries need not be page-aligned, so only part
/// of a page may be covered). An address hits when Lo <= addr <= HiM8;
/// HiM8 is the span end minus 8, so a hit guarantees addr + 8 bytes are
/// in bounds — conservative for all access sizes, and an inline hit can
/// never fault. 32-byte stride keeps the probe's indexing a shift.
struct TlbEntry {
  uint64_t Lo = ~uint64_t(0); ///< Lowest spanned guest address; ~0: empty.
  uint64_t HiM8 = 0;          ///< Highest address valid for an 8-byte access.
  uint64_t Bias = 0;          ///< Host pointer minus guest address.
  uint64_t Pad = 0;
};
constexpr size_t TlbSlots = 256;

/// One inline indirect-branch-target-cache entry: guest block-start PC ->
/// code-cache entry point.
struct IbtcEntry {
  uint64_t Tag = ~uint64_t(0); ///< Guest PC; ~0 never matches.
  uint64_t Code = 0;           ///< Host code address of the translation.
};

/// Why translated code returned to the dispatcher.
enum class ExitReason : uint64_t {
  Next = 0,  ///< Block completed; ExitPC is the successor.
  Fault = 1, ///< Helper requested a precise side exit at ExitIndex.
  Fuel = 2,  ///< Remaining budget below the block length; nothing ran.
};

/// The state block shared between C++ and generated code. Layout is part
/// of the emitted code (static_asserts in Dbt.cpp pin the offsets).
struct DbtState {
  uint64_t *Regs = nullptr;   ///< +0   guest registers
  uint64_t Budget = 0;        ///< +8   remaining instruction fuel
  uint64_t ExitPC = 0;        ///< +16  successor / re-execution PC
  uint64_t ExitReason = 0;    ///< +24  ExitReason
  uint64_t ExitIndex = 0;     ///< +32  faulting instruction index
  uint64_t ChainFrom = 0;     ///< +40  patchable exit-site address (0: none)
  /// +48: misaligned accesses retired inline (x86 handles them natively
  /// when strict alignment is off); foldStats drains this into
  /// Stats::UnalignedAccesses.
  uint64_t Unaligned = 0;
  void *M = nullptr;          ///< +56  Machine*
  void *Mem = nullptr;        ///< +64  Memory*
  TlbEntry RdTlb[TlbSlots];   ///< +72
  TlbEntry WrTlb[TlbSlots];   ///< +72 + 32*TlbSlots
  /// Inline indirect-branch target cache, probed by jmp/jsr/ret exits so
  /// monomorphic indirect transfers stay inside the cache. Filled by the
  /// dispatcher, cleared on invalidation.
  IbtcEntry Ibtc[TlbSlots];   ///< +72 + 64*TlbSlots
  Stats *St = nullptr;        ///< after the tables (not touched by jit code)
  const MachineOptions *Opts = nullptr;
};

/// One way out of a trace, with the statistics of the retired prefix. A
/// trace may span several guest basic blocks (unconditional branches and
/// the likely side of conditional branches are followed inline), so each
/// exit edge records the stat sums of everything retired on the path to
/// it; folding is then edge-count x prefix per edge.
struct ExitEdge {
  uint64_t Cnt = 0; ///< Bumped by generated code (address baked in).
  uint32_t Insts = 0, Loads = 0, Stores = 0;
  uint32_t CondBranches = 0, TakenBranches = 0, Calls = 0, Returns = 0;
  std::vector<std::pair<isa::Opcode, uint32_t>> Mix;
};

/// Static per-trace facts plus the runtime exit-edge counters the
/// generated code bumps. Heap-allocated once per translation so the
/// absolute counter addresses baked into the code stay valid for the
/// trace's life.
struct TranslatedBlock {
  uint64_t StartPC = 0;       ///< Entry PC (the trace's identity).
  uint64_t LoPC = 0, HiPC = 0; ///< Guest range bounds for invalidation.
  uint32_t NumInsts = 0;
  const void *Code = nullptr; ///< Entry point in the code cache.

  /// Guest PC of every trace instruction (traces are not contiguous).
  std::vector<uint64_t> PCs;
  /// Per instruction: true when it is a conditional branch the trace
  /// follows on its *taken* side (retiring it counts a taken branch).
  std::vector<uint8_t> TookBranch;

  /// Exit edges; the last one is the trace end (prefix = whole trace),
  /// the others are the unfollowed sides of interior conditional
  /// branches. Sized before emission: counter addresses must not move.
  std::vector<ExitEdge> Exits;

  /// Chain patch sites inside *other* blocks that jump here; unlinked on
  /// invalidation.
  std::vector<uint8_t *> Incoming;
  bool Invalidated = false;
};

/// Observability counters, published by axp-run as sim.dbt-*.
struct DbtPerf {
  uint64_t BlocksTranslated = 0; ///< Translations performed.
  uint64_t CacheBytes = 0;       ///< Bytes of code emitted into the cache.
  uint64_t ChainLinks = 0;       ///< Direct-branch exits patched.
  uint64_t InterpFallbacks = 0;  ///< Dispatcher hand-offs to the interpreter.
  uint64_t SideExits = 0;        ///< Precise fault/strict-align side exits.
  uint64_t TlbFills = 0;         ///< Inline-TLB entries installed.
  uint64_t SlowMemOps = 0;       ///< Loads/stores through the C++ helpers.
  uint64_t Invalidations = 0;    ///< Blocks dropped by invalidation events.
  uint64_t CacheFlushes = 0;     ///< Whole-cache resets (full or overflow).
};

/// The translation tier owned by one Machine.
class DbtTier {
public:
  explicit DbtTier(Machine &M);
  ~DbtTier();

  DbtTier(const DbtTier &) = delete;
  DbtTier &operator=(const DbtTier &) = delete;

  /// True when the host can run translated code (x86-64 with an
  /// executable code cache).
  static bool supported();

  /// Re-points the tier at \p M (Machine objects move; the tier is held
  /// by unique_ptr so its own address is stable) and refreshes the
  /// DbtState pointers. Called at every runDbt entry.
  void attach(Machine &M);

  /// The translated block starting at \p PC, or null.
  TranslatedBlock *lookup(uint64_t PC) {
    auto It = Blocks.find(PC);
    return It == Blocks.end() ? nullptr : It->second.get();
  }

  /// Bumps the execution count for \p PC; true once it crosses the
  /// translation threshold (and the block is not known-untranslatable).
  bool shouldTranslate(uint64_t PC, uint32_t Threshold);

  /// Translates the block at \p PC; returns null (and remembers the PC
  /// as untranslatable) when the first instruction must stay with the
  /// interpreter.
  TranslatedBlock *translate(uint64_t PC);

  /// Runs \p B with \p Budget instruction fuel. On return the state's
  /// ExitReason/ExitPC/ExitIndex/Budget describe what happened; chaining
  /// of the taken exit is attempted against the current block map.
  void execute(TranslatedBlock *B);

  DbtState &state() { return *State; }

  /// Folds all pending per-block exit counters into \p St. Idempotent;
  /// called whenever control leaves the tier for good (run exit) and
  /// before a block's counters die to invalidation.
  void foldStats(Stats &St);

  /// Commits the retired prefix [0, ExitIndex) of \p B after a precise
  /// side exit (the faulting instruction itself retires nothing) and
  /// refunds the unretired fuel.
  void commitSideExit(TranslatedBlock *B, Stats &St);

  /// Invalidation subscriber: drops translated blocks and TLB pages
  /// intersecting [Lo, Hi). Full events pass Lo=0, Hi=~0.
  void invalidateRange(uint64_t Lo, uint64_t Hi);

  const DbtPerf &perf() const { return Perf; }
  DbtPerf &perfMutable() { return Perf; }

private:
  friend struct TranslateCtx;

  /// Attempts to patch the exit site recorded in State->ChainFrom to jump
  /// straight to \p Target's code.
  void chain(TranslatedBlock *Target);

  /// Emits the enter/exit thunks at the start of a fresh cache.
  void emitThunks();
  /// Drops every translation (counters folded into PendingStats first).
  void flushCache();
  /// Copies \p Bytes into the cache (RW window), returns the code
  /// address, or null when the cache is full.
  uint8_t *commitCode(const std::vector<uint8_t> &Bytes);
  void makeWritable();
  void makeExecutable();

  Machine *M = nullptr;
  std::unique_ptr<DbtState> State;

  uint8_t *Cache = nullptr;
  size_t CacheSize = 0;
  size_t CacheUsed = 0;
  bool CacheWritable = false;

  /// Shared thunks inside the cache.
  using EnterFn = void (*)(DbtState *, const void *);
  EnterFn Enter = nullptr;
  uint8_t *ExitThunk = nullptr;

  std::unordered_map<uint64_t, std::unique_ptr<TranslatedBlock>> Blocks;
  std::unordered_map<uint64_t, uint32_t> ExecCounts;
  std::unordered_map<uint64_t, bool> Untranslatable;

  /// Stats folded out of invalidated blocks before their counters die,
  /// drained by the next foldStats().
  Stats PendingStats;
  bool PendingStatsDirty = false;

  DbtPerf Perf;
};

/// Environment override for CI sweeps: ATOM_SIM_DBT=off disables the
/// tier, ATOM_SIM_DBT=force sets the translation threshold to 0.
enum class EnvMode { Default, Off, Force };
EnvMode envMode();

} // namespace dbt
} // namespace sim
} // namespace atom

#endif // ATOM_SIM_DBT_DBT_H
