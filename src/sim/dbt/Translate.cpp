//===- sim/dbt/Translate.cpp - axp trace -> host x86-64 -------------------===//
//
// Lowers one guest *trace* to host code. A trace starts at the hot PC and
// follows execution through unconditional branches/calls (inlined — the
// link write happens, then translation continues at the target) and
// through the likely side of conditional branches (backward displacement =
// loop back edge = taken); the unfollowed side becomes a counted exit
// edge with the stat sums of its retired prefix. The trace ends at the
// first indirect transfer, untranslatable instruction, revisited PC
// (loop closure), or size cap.
//
// The per-instruction lowering mirrors Machine::runLoop's switch case for
// case — operand read order, sign extensions, the 32-bit sub-operations,
// and the link-before-target rule of the jump format are all the
// interpreter's own, which is what the differential fuzz suite
// (tests/DbtTests.cpp) enforces.
//
// Register conventions inside a trace (SysV callee-saved pinned by the
// enter thunk):
//   r15  DbtState*            r14  guest register array
//   r13  inline-TLB base (reads at +0, writes at +32*TlbSlots)
//   rbx/rbp/r12  fixed-map cache of the trace's three hottest guest regs
//   rax  primary scratch / result    rcx  operand B / shift count
//   rdx  TLB probe scratch           rsi  effective address / jump target
//   r8   store value
//
//===----------------------------------------------------------------------===//

#include "sim/dbt/Dbt.h"
#include "sim/dbt/Emitter.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace atom;
using namespace atom::sim;
using namespace atom::sim::dbt;
using namespace atom::isa;

#if !defined(__x86_64__)

TranslatedBlock *DbtTier::translate(uint64_t PC) {
  Untranslatable[PC] = true;
  return nullptr;
}

#else

extern "C" {
uint64_t atomDbtLoad(atom::sim::dbt::DbtState *, uint64_t, uint64_t);
void atomDbtStore(atom::sim::dbt::DbtState *, uint64_t, uint64_t, uint64_t);
uint64_t atomDbtDiv(atom::sim::dbt::DbtState *, uint64_t, uint64_t, uint64_t);
}

namespace {

/// Opcodes the emitter can lower. Callsys/Halt always stay with the
/// interpreter (they end the trace before themselves).
bool canLower(Opcode Op) {
  switch (Op) {
  case Opcode::Callsys:
  case Opcode::Halt:
  case Opcode::NumOpcodes:
    return false;
  default:
    return true;
  }
}

constexpr size_t MaxTraceInsts = 256;
constexpr size_t MaxCondEdges = 24;
constexpr int32_t WrTlbDisp = int32_t(32 * TlbSlots); // WrTlb past RdTlb

Cond invertCond(Cond C) {
  switch (C) {
  case CondE: return CondNE;
  case CondNE: return CondE;
  case CondL: return CondGE;
  case CondGE: return CondL;
  case CondLE: return CondG;
  case CondG: return CondLE;
  case CondB: return CondAE;
  default: return CondB; // CondAE
  }
}

/// Host condition for a guest conditional branch (tested against 0, or
/// the low bit for blbc/blbs).
Cond branchCond(Opcode Op, bool &LowBit) {
  LowBit = false;
  switch (Op) {
  case Opcode::Beq: return CondE;
  case Opcode::Bne: return CondNE;
  case Opcode::Blt: return CondL;
  case Opcode::Ble: return CondLE;
  case Opcode::Bgt: return CondG;
  case Opcode::Bge: return CondGE;
  case Opcode::Blbc: LowBit = true; return CondE;
  default: LowBit = true; return CondNE; // Blbs
  }
}

} // namespace

namespace atom {
namespace sim {
namespace dbt {

/// One instruction of a discovered trace.
struct TraceStep {
  Inst In;
  uint64_t PC = 0;
  bool FollowTaken = false; ///< Cond branch followed on its taken side.
};

/// One in-flight translation. Friend of DbtTier.
struct TranslateCtx {
  DbtTier &T;
  Machine &M;
  TranslatedBlock &Meta;
  const std::vector<TraceStep> &Body;
  /// Exit target PC per interior edge (parallel to Meta.Exits minus the
  /// final edge); the final edge's target for a direct trace end.
  const std::vector<uint64_t> &EdgeTargets;
  bool EndsIndirect;
  Emitter E;

  /// rel32 fields that must point at the shared exit thunk once the trace
  /// is placed in the cache.
  std::vector<size_t> ThunkSites;
  /// movabs imm64 fields that must hold the absolute address of their own
  /// exit jmp (the ChainFrom patch site).
  struct AbsSite {
    size_t ImmOff;
    size_t JmpOff;
  };
  std::vector<AbsSite> AbsSites;

  /// Pending jcc's to the block-local side-exit stub (helper faulted).
  std::vector<Emitter::Fixup> SideExits;
  /// Pending jcc's to interior exit-edge stubs (unfollowed branch side).
  struct EdgeStub {
    Emitter::Fixup From;
    size_t EdgeIdx;
  };
  std::vector<EdgeStub> EdgeStubs;

  /// Body-top offset (after the prologue's pinned-register reloads);
  /// internal back edges jump here with the pinned registers still live.
  size_t BodyTop = 0;
  /// Fuel checks of internal back edges; unlike the entry fuel gate they
  /// must spill the pinned registers.
  std::vector<Emitter::Fixup> SelfFuelFixups;

  /// Guest -> host fixed map (NoHostReg = lives in memory off r14).
  uint8_t HostFor[NumRegs];
  std::vector<unsigned> Mapped; ///< Guest regs that are pinned.

  TranslateCtx(DbtTier &Tier, Machine &Mach, TranslatedBlock &B,
               const std::vector<TraceStep> &Steps,
               const std::vector<uint64_t> &Targets, bool Indirect)
      : T(Tier), M(Mach), Meta(B), Body(Steps), EdgeTargets(Targets),
        EndsIndirect(Indirect) {
    std::memset(HostFor, NoHostReg & 0xFF, sizeof(HostFor));
    pickFixedMap();
  }

  //===--- fixed-map register allocation ---------------------------------===//

  void pickFixedMap() {
    uint32_t Refs[NumRegs] = {};
    for (const TraceStep &S : Body) {
      uint32_t Mask = readRegs(S.In) | writtenRegs(S.In);
      for (unsigned R = 0; R < RegZero; ++R)
        if (Mask & (1u << R))
          ++Refs[R];
    }
    static const uint8_t Hosts[3] = {RBX, RBP, R12};
    for (unsigned Slot = 0; Slot < 3; ++Slot) {
      unsigned Best = NumRegs;
      uint32_t BestC = 2; // >= 3 refs: pinning costs a load + a spill
      for (unsigned R = 0; R < RegZero; ++R)
        if (HostFor[R] == uint8_t(NoHostReg & 0xFF) && Refs[R] > BestC) {
          Best = R;
          BestC = Refs[R];
        }
      if (Best == NumRegs)
        break;
      HostFor[Best] = Hosts[Slot];
      Mapped.push_back(Best);
    }
  }

  unsigned hostOf(unsigned G) const { return HostFor[G]; }
  bool isMapped(unsigned G) const {
    return HostFor[G] != uint8_t(NoHostReg & 0xFF);
  }

  /// Materializes guest register \p G into host register \p Dst.
  void loadGuest(unsigned Dst, unsigned G) {
    if (G == RegZero)
      E.zero(Dst);
    else if (isMapped(G))
      E.movRR(Dst, hostOf(G));
    else
      E.loadRM(Dst, R14, int32_t(8 * G));
  }

  /// Writes host register \p Src into guest register \p G (RegZero writes
  /// are discarded, as in Machine::setReg).
  void writeGuest(unsigned G, unsigned Src) {
    if (G == RegZero)
      return;
    if (isMapped(G))
      E.movRR(hostOf(G), Src);
    else
      E.storeMR(R14, int32_t(8 * G), Src);
  }

  /// Spills every pinned guest register back to the register array; done
  /// on every path that leaves the trace.
  void flushMapped() {
    for (unsigned G : Mapped)
      E.storeMR(R14, int32_t(8 * G), hostOf(G));
  }

  /// Operand B into \p Dst: the 8-bit zero-extended literal or Regs[Rb].
  void loadB(unsigned Dst, const Inst &I) {
    if (I.IsLit)
      E.movImm64(Dst, I.Lit);
    else
      loadGuest(Dst, I.Rb);
  }

  //===--- helper calls ---------------------------------------------------===//

  /// After any helper that can fault: test ExitReason and bail to the
  /// side-exit stub if set.
  void checkHelperExit() {
    E.cmpMemImm(R15, int32_t(offsetof(DbtState, ExitReason)), 0);
    SideExits.push_back(E.jcc(CondNE));
  }

  //===--- memory ---------------------------------------------------------===//

  /// Emits the inline TLB probe for the aligned address in rsi; on a hit
  /// rsi becomes the host pointer. \p Miss receives the fixups that jump
  /// to the slow path. The entry is a span: a hit needs
  /// Lo <= addr <= HiM8, which bounds addr + 8 inside the span — the
  /// range check subsumes the page tag (a different page's span can never
  /// contain this address).
  void tlbProbe(bool IsWrite, std::vector<Emitter::Fixup> &Miss) {
    int32_t Disp = IsWrite ? WrTlbDisp : 0;
    // rcx = slot offset for addr's page (32-byte entries).
    E.movRR(RDX, RSI);
    E.shrImm(RDX, 13);
    E.zext8RR(RCX, RDX);
    E.shlImm(RCX, 5);
    E.cmpRMIndex(RSI, R13, RCX, Disp); // addr vs Lo (empty: Lo = ~0)
    Miss.push_back(E.jcc(CondB));
    E.cmpRMIndex(RSI, R13, RCX, Disp + 8); // addr vs HiM8
    Miss.push_back(E.jcc(CondA));
    // Hit: rsi += bias -> host pointer.
    E.addRMIndex(RSI, R13, RCX, Disp + 16);
  }

  void emitMemOp(size_t Idx, const Inst &I) {
    unsigned Size = memAccessSize(I.Op);
    unsigned SizeLog2 = Size == 1 ? 0 : Size == 2 ? 1 : Size == 4 ? 2 : 3;
    uint64_t IdxOp = (uint64_t(Idx) << 8) | uint64_t(uint8_t(I.Op));
    bool IsStore = isStore(I.Op);

    loadGuest(RSI, I.Rb);
    if (I.Disp)
      E.addImm(RSI, I.Disp);
    if (IsStore)
      loadGuest(R8, I.Ra);

    std::vector<Emitter::Fixup> Miss;
    bool Strict = M.options().StrictAlignment;
    if (Size > 1 && Strict) {
      E.testImm8(RSI, uint8_t(Size - 1));
      Miss.push_back(E.jcc(CondNE)); // misaligned must trap precisely
    } else if (Size > 1) {
      // Misaligned accesses are legal here and the host handles them
      // natively; a TLB hit's span bound (addr + 8 in range) holds for
      // any alignment. Count them inline; the miss path undoes the bump
      // because the helper re-counts on success.
      E.testImm8(RSI, uint8_t(Size - 1));
      Emitter::Fixup Aligned = E.jcc(CondE);
      E.addMemImm(R15, int32_t(offsetof(DbtState, Unaligned)), 1);
      E.patch(Aligned, E.here());
    }
    tlbProbe(IsStore, Miss);
    if (IsStore) {
      E.storeMem(RSI, R8, SizeLog2);
    } else {
      E.loadMem(RAX, RSI, SizeLog2, /*Sext=*/I.Op == Opcode::Ldl);
    }
    Emitter::Fixup Done = E.jmp();

    // Slow path: the C++ helper (TLB miss, strict-unaligned, or faulting).
    for (Emitter::Fixup F : Miss)
      E.patch(F, E.here());
    if (Size > 1 && !Strict) {
      // rsi is still the guest address on the miss path; undo the inline
      // unaligned bump (the helper counts it itself when the access
      // succeeds, and a faulting access must not count at all).
      E.testImm8(RSI, uint8_t(Size - 1));
      Emitter::Fixup Aligned = E.jcc(CondE);
      E.addMemImm(R15, int32_t(offsetof(DbtState, Unaligned)), -1);
      E.patch(Aligned, E.here());
    }
    E.movRR(RDI, R15);
    if (IsStore) {
      E.movRR(RDX, R8);
      E.movImm64(RCX, IdxOp);
      E.callAbs(uint64_t(reinterpret_cast<uintptr_t>(&atomDbtStore)));
    } else {
      E.movImm64(RDX, IdxOp);
      E.callAbs(uint64_t(reinterpret_cast<uintptr_t>(&atomDbtLoad)));
    }
    checkHelperExit();

    E.patch(Done, E.here());
    if (!IsStore)
      writeGuest(I.Ra, RAX);
  }

  //===--- operate format -------------------------------------------------===//

  void emitShift(const Inst &I, void (Emitter::*ByCl)(unsigned),
                 void (Emitter::*ByImm)(unsigned, uint8_t)) {
    loadGuest(RAX, I.Ra);
    if (I.IsLit) {
      if (I.Lit & 63)
        (E.*ByImm)(RAX, uint8_t(I.Lit & 63));
    } else {
      loadGuest(RCX, I.Rb);
      (E.*ByCl)(RAX); // hardware masks the count by 63, as B & 63 does
    }
    writeGuest(I.Rc, RAX);
  }

  void emitCompare(const Inst &I, Cond C) {
    loadGuest(RAX, I.Ra);
    if (I.IsLit) {
      E.cmpImm(RAX, int32_t(I.Lit));
    } else {
      loadGuest(RCX, I.Rb);
      E.cmpRR(RAX, RCX);
    }
    E.setcc(C, RAX);
    E.zext8RR(RAX, RAX);
    writeGuest(I.Rc, RAX);
  }

  /// ra OP f(B) with an optional `not` on B first (bic/ornot/eqv); a
  /// literal B (inverted or not) folds into the immediate form.
  void emitLogic(const Inst &I, void (Emitter::*Op)(unsigned, unsigned),
                 void (Emitter::*OpImm)(unsigned, int32_t), bool InvertB) {
    loadGuest(RAX, I.Ra);
    if (I.IsLit) {
      int32_t V = InvertB ? int32_t(~int64_t(I.Lit)) : int32_t(I.Lit);
      (E.*OpImm)(RAX, V); // sign-extended imm is the exact 64-bit mask
    } else {
      loadGuest(RCX, I.Rb);
      if (InvertB)
        E.notR(RCX);
      (E.*Op)(RAX, RCX);
    }
    writeGuest(I.Rc, RAX);
  }

  void emitAddSub(const Inst &I, void (Emitter::*Op)(unsigned, unsigned),
                  void (Emitter::*OpImm)(unsigned, int32_t), bool Sext32) {
    loadGuest(RAX, I.Ra);
    if (I.IsLit) {
      if (I.Lit)
        (E.*OpImm)(RAX, int32_t(I.Lit));
    } else {
      loadGuest(RCX, I.Rb);
      (E.*Op)(RAX, RCX);
    }
    if (Sext32)
      E.sext32RR(RAX, RAX);
    writeGuest(I.Rc, RAX);
  }

  void emitDiv(size_t Idx, const Inst &I) {
    // atomDbtDiv(DbtState*, A, B, IdxOp) — handles the 0-divisor default
    // and requests an Arithmetic side exit under TrapOnDivideByZero.
    loadGuest(RSI, I.Ra);
    loadB(RDX, I);
    E.movRR(RDI, R15);
    E.movImm64(RCX, (uint64_t(Idx) << 8) | uint64_t(uint8_t(I.Op)));
    E.callAbs(uint64_t(reinterpret_cast<uintptr_t>(&atomDbtDiv)));
    checkHelperExit();
    writeGuest(I.Rc, RAX);
  }

  void emitInst(size_t Idx, const Inst &I) {
    switch (I.Op) {
    case Opcode::Lda:
      loadGuest(RAX, I.Rb);
      if (I.Disp)
        E.addImm(RAX, I.Disp);
      writeGuest(I.Ra, RAX);
      break;
    case Opcode::Ldah:
      loadGuest(RAX, I.Rb);
      if (I.Disp)
        E.addImm(RAX, I.Disp << 16);
      writeGuest(I.Ra, RAX);
      break;

    case Opcode::Ldbu:
    case Opcode::Ldwu:
    case Opcode::Ldl:
    case Opcode::Ldq:
    case Opcode::Stb:
    case Opcode::Stw:
    case Opcode::Stl:
    case Opcode::Stq:
      emitMemOp(Idx, I);
      break;

    case Opcode::Addl:
      emitAddSub(I, &Emitter::addRR, &Emitter::addImm, true);
      break;
    case Opcode::Addq:
      emitAddSub(I, &Emitter::addRR, &Emitter::addImm, false);
      break;
    case Opcode::Subl:
      emitAddSub(I, &Emitter::subRR, &Emitter::subImm, true);
      break;
    case Opcode::Subq:
      emitAddSub(I, &Emitter::subRR, &Emitter::subImm, false);
      break;
    case Opcode::Mull:
      // sext32(low32(a * b)): 64-bit imul's low half is sign-agnostic.
      loadGuest(RAX, I.Ra);
      loadB(RCX, I);
      E.imulRR(RAX, RCX);
      E.sext32RR(RAX, RAX);
      writeGuest(I.Rc, RAX);
      break;
    case Opcode::Mulq:
      loadGuest(RAX, I.Ra);
      loadB(RCX, I);
      E.imulRR(RAX, RCX);
      writeGuest(I.Rc, RAX);
      break;
    case Opcode::Umulh:
      loadGuest(RAX, I.Ra);
      loadB(RCX, I);
      E.mulR(RCX); // rdx:rax = rax * rcx
      E.movRR(RAX, RDX);
      writeGuest(I.Rc, RAX);
      break;

    case Opcode::Divq:
    case Opcode::Remq:
    case Opcode::Divqu:
    case Opcode::Remqu:
      emitDiv(Idx, I);
      break;

    case Opcode::And:
      emitLogic(I, &Emitter::andRR, &Emitter::andImm, false);
      break;
    case Opcode::Bic:
      emitLogic(I, &Emitter::andRR, &Emitter::andImm, true);
      break;
    case Opcode::Bis:
      emitLogic(I, &Emitter::orRR, &Emitter::orImm, false);
      break;
    case Opcode::Ornot:
      emitLogic(I, &Emitter::orRR, &Emitter::orImm, true);
      break;
    case Opcode::Xor:
      emitLogic(I, &Emitter::xorRR, &Emitter::xorImm, false);
      break;
    case Opcode::Eqv:
      emitLogic(I, &Emitter::xorRR, &Emitter::xorImm, true);
      break;

    case Opcode::Sll: emitShift(I, &Emitter::shlCl, &Emitter::shlImm); break;
    case Opcode::Srl: emitShift(I, &Emitter::shrCl, &Emitter::shrImm); break;
    case Opcode::Sra: emitShift(I, &Emitter::sarCl, &Emitter::sarImm); break;

    case Opcode::Cmpeq: emitCompare(I, CondE); break;
    case Opcode::Cmplt: emitCompare(I, CondL); break;
    case Opcode::Cmple: emitCompare(I, CondLE); break;
    case Opcode::Cmpult: emitCompare(I, CondB); break;
    case Opcode::Cmpule: emitCompare(I, CondBE); break;

    case Opcode::Sextb:
      loadB(RCX, I);
      E.sext8RR(RAX, RCX);
      writeGuest(I.Rc, RAX);
      break;
    case Opcode::Sextw:
      loadB(RCX, I);
      E.sext16RR(RAX, RCX);
      writeGuest(I.Rc, RAX);
      break;

    default: // control transfers handled by the trace walker
      break;
    }
  }

  //===--- exits ----------------------------------------------------------===//

  /// Emits one complete exit: spill pinned regs, bump the edge counter,
  /// refund the unretired fuel (interior edges only), then a patchable
  /// 5-byte jmp. Unchained it falls through to the slow tail (publish
  /// successor PC + this site's address as ChainFrom, leave via the exit
  /// thunk); once the dispatcher chains it, the jmp lands directly on
  /// the successor's code and the dead stores are skipped — the
  /// steady-state cost is spill + count + jmp.
  void emitDirectExit(ExitEdge &Edge, uint64_t TargetPC) {
    if (TargetPC == Meta.StartPC) {
      // Internal back edge: the exit re-enters this same trace. Count
      // the completed path and recharge in one step — the edge's refund
      // and the next iteration's charge net out to sub(Edge.Insts) — and
      // loop to the body top with the pinned registers still live. The
      // borrow case spills and reports fuel exhaustion precisely.
      E.movImm64(RAX, uint64_t(reinterpret_cast<uintptr_t>(&Edge.Cnt)));
      E.incMem(RAX);
      E.subMemImm(R15, int32_t(offsetof(DbtState, Budget)),
                  int32_t(Edge.Insts));
      SelfFuelFixups.push_back(E.jcc(CondB));
      E.patch(E.jmp(), BodyTop);
      return;
    }
    flushMapped();
    E.movImm64(RAX, uint64_t(reinterpret_cast<uintptr_t>(&Edge.Cnt)));
    E.incMem(RAX);
    uint32_t Refund = Meta.NumInsts - Edge.Insts;
    if (Refund)
      E.addMemImm(R15, int32_t(offsetof(DbtState, Budget)), int32_t(Refund));
    size_t JmpOff = E.here();
    Emitter::Fixup Site = E.jmp();
    E.patch(Site, E.here()); // rel32 = 0: fall through until chained
    E.movImm64(RCX, TargetPC);
    E.storeMR(R15, int32_t(offsetof(DbtState, ExitPC)), RCX);
    size_t ImmOff = E.movImm64Fixed(RAX, 0); // patched: address of the jmp
    E.storeMR(R15, int32_t(offsetof(DbtState, ChainFrom)), RAX);
    ThunkSites.push_back(E.jmp().Offset);
    AbsSites.push_back({ImmOff, JmpOff});
  }

  /// Indirect exit: successor PC already in rsi. Probes the inline
  /// indirect-branch target cache first, so monomorphic jmp/jsr/ret
  /// transfers stay inside the code cache; a miss hands the PC to the
  /// dispatcher with ChainFrom cleared (a chained predecessor may have
  /// left its own site address there on the way in).
  void emitIndirectExit(ExitEdge &Edge) {
    flushMapped();
    E.movImm64(RAX, uint64_t(reinterpret_cast<uintptr_t>(&Edge.Cnt)));
    E.incMem(RAX);
    constexpr int32_t IbtcDisp = int32_t(offsetof(DbtState, Ibtc));
    // rdx = ((pc >> 2) & 255) * 16 — the entry offset.
    E.movRR(RDX, RSI);
    E.shrImm(RDX, 2);
    E.zext8RR(RDX, RDX);
    E.shlImm(RDX, 4);
    E.cmpRMIndex(RSI, R15, RDX, IbtcDisp);
    Emitter::Fixup MissF = E.jcc(CondNE);
    E.loadRMIndex(RAX, R15, RDX, IbtcDisp + 8);
    E.jmpReg(RAX); // straight into the successor trace's prologue
    E.patch(MissF, E.here());
    E.storeMR(R15, int32_t(offsetof(DbtState, ExitPC)), RSI);
    E.storeMemImm(R15, int32_t(offsetof(DbtState, ChainFrom)), 0);
    ThunkSites.push_back(E.jmp().Offset);
  }

  //===--- whole trace ----------------------------------------------------===//

  void emitBlock() {
    // Fuel gate: leave before running anything if the budget cannot cover
    // the whole trace; the dispatcher interprets the tail precisely. One
    // sub does both the check (borrow = budget short) and the charge;
    // exit edges refund their unretired suffix, the cold stub refunds
    // everything.
    E.subMemImm(R15, int32_t(offsetof(DbtState, Budget)),
                int32_t(Meta.NumInsts));
    Emitter::Fixup FuelF = E.jcc(CondB);
    for (unsigned G : Mapped)
      E.loadRM(hostOf(G), R14, int32_t(8 * G));
    BodyTop = E.here();

    size_t NextEdge = 0;
    for (size_t I = 0; I < Body.size(); ++I) {
      const Inst &In = Body[I].In;
      uint64_t PC = Body[I].PC;
      switch (In.Op) {
      case Opcode::Br:
      case Opcode::Bsr:
        // Inlined: write the link, keep going at the target (the next
        // trace step).
        if (In.Ra != RegZero) {
          E.movImm64(RAX, PC + 4);
          writeGuest(In.Ra, RAX);
        }
        break;
      case Opcode::Jmp:
      case Opcode::Jsr:
      case Opcode::Ret: {
        // Target computed from rb *before* the link write (ret ra,(ra)).
        loadGuest(RSI, In.Rb);
        E.andImm(RSI, -4);
        if (In.Ra != RegZero) {
          E.movImm64(RAX, PC + 4);
          writeGuest(In.Ra, RAX);
        }
        emitIndirectExit(Meta.Exits.back());
        break;
      }
      default:
        if (isCondBranch(In.Op)) {
          // Exit on the unfollowed side; the followed side continues
          // inline as the next trace step.
          bool LowBit;
          Cond C = branchCond(In.Op, LowBit);
          if (Body[I].FollowTaken)
            C = invertCond(C);
          unsigned Src = RAX; // pinned regs are tested in place
          if (isMapped(In.Ra))
            Src = hostOf(In.Ra);
          else
            loadGuest(RAX, In.Ra);
          if (LowBit)
            E.testImm8(Src, 1);
          else
            E.cmpImm(Src, 0);
          EdgeStubs.push_back({E.jcc(C), NextEdge++});
        } else {
          emitInst(I, In);
        }
        break;
      }
    }
    if (!EndsIndirect)
      emitDirectExit(Meta.Exits.back(), EdgeTargets.back());

    // Interior exit-edge stubs: the unfollowed side of each conditional
    // branch leaves here with its own counter and fuel refund.
    for (const EdgeStub &S : EdgeStubs) {
      E.patch(S.From, E.here());
      emitDirectExit(Meta.Exits[S.EdgeIdx], EdgeTargets[S.EdgeIdx]);
    }

    // Back-edge fuel stub: the pinned registers were live, so spill them,
    // then undo the recharge (the completed path was already committed by
    // its counter) and report fuel exhaustion at the trace head.
    if (!SelfFuelFixups.empty()) {
      for (Emitter::Fixup F : SelfFuelFixups)
        E.patch(F, E.here());
      flushMapped();
      E.addMemImm(R15, int32_t(offsetof(DbtState, Budget)),
                  int32_t(Meta.NumInsts));
      E.storeMemImm(R15, int32_t(offsetof(DbtState, ExitReason)),
                    int32_t(ExitReason::Fuel));
      E.movImm64(RCX, Meta.StartPC);
      E.storeMR(R15, int32_t(offsetof(DbtState, ExitPC)), RCX);
      ThunkSites.push_back(E.jmp().Offset);
    }

    // Side-exit stub: a helper recorded a fault at ExitIndex. Spill state
    // and hand the dispatcher this trace's identity via ExitPC.
    if (!SideExits.empty()) {
      for (Emitter::Fixup F : SideExits)
        E.patch(F, E.here());
      flushMapped();
      E.movImm64(RCX, Meta.StartPC);
      E.storeMR(R15, int32_t(offsetof(DbtState, ExitPC)), RCX);
      ThunkSites.push_back(E.jmp().Offset);
    }

    // Fuel stub: nothing ran, nothing to spill; refund the charge.
    E.patch(FuelF, E.here());
    E.addMemImm(R15, int32_t(offsetof(DbtState, Budget)),
                int32_t(Meta.NumInsts));
    E.storeMemImm(R15, int32_t(offsetof(DbtState, ExitReason)),
                  int32_t(ExitReason::Fuel));
    E.movImm64(RCX, Meta.StartPC);
    E.storeMR(R15, int32_t(offsetof(DbtState, ExitPC)), RCX);
    ThunkSites.push_back(E.jmp().Offset);
  }
};

} // namespace dbt
} // namespace sim
} // namespace atom

TranslatedBlock *DbtTier::translate(uint64_t PC) {
  Machine &Mach = *M;
  auto Reject = [&]() -> TranslatedBlock * {
    Untranslatable[PC] = true;
    return nullptr;
  };
  if (!Cache)
    return Reject();
  uint64_t Text = Mach.textStart();

  // Discover the trace: follow unconditional direct transfers and the
  // likely (backward = taken) side of conditional branches; stop at the
  // first indirect transfer, precise instruction, revisited PC, or cap.
  std::vector<TraceStep> Body;
  std::unordered_set<uint64_t> InTrace;
  uint64_t Cur = PC;
  bool EndsIndirect = false;
  size_t CondEdges = 0;
  for (;;) {
    uint64_t Off = Cur - Text;
    if ((Off & 3) || Off / 4 >= Mach.textWordCount() ||
        !Mach.decodeOkWord(Off / 4))
      break; // trace ends; Cur is the direct successor
    const Inst &In = Mach.decodedWord(Off / 4);
    if (!canLower(In.Op) || InTrace.count(Cur) ||
        Body.size() >= MaxTraceInsts)
      break;
    if (isCondBranch(In.Op) && CondEdges >= MaxCondEdges)
      break;
    InTrace.insert(Cur);
    TraceStep S;
    S.In = In;
    S.PC = Cur;
    uint64_t Taken = Cur + 4 + uint64_t(int64_t(In.Disp)) * 4;
    if (In.Op == Opcode::Br || In.Op == Opcode::Bsr) {
      Body.push_back(S);
      Cur = Taken;
      continue;
    }
    if (isCondBranch(In.Op)) {
      S.FollowTaken = In.Disp < 0; // backward taken = loop back edge
      ++CondEdges;
      Body.push_back(S);
      Cur = S.FollowTaken ? Taken : Cur + 4;
      continue;
    }
    Body.push_back(S);
    if (isControlTransfer(In.Op)) { // jmp/jsr/ret
      EndsIndirect = true;
      break;
    }
    Cur += 4;
  }
  if (Body.empty())
    return Reject();

  auto MetaPtr = std::make_unique<TranslatedBlock>();
  TranslatedBlock &B = *MetaPtr;
  B.StartPC = PC;
  B.NumInsts = uint32_t(Body.size());
  B.LoPC = ~uint64_t(0);
  B.HiPC = 0;
  B.PCs.reserve(Body.size());
  B.TookBranch.assign(Body.size(), 0);

  // Build the exit edges with their retired-prefix stat sums: one per
  // interior conditional branch (the unfollowed side) plus the trace-end
  // edge. Exits is fully sized here — counter addresses are baked into
  // the code and must not move.
  std::vector<uint64_t> EdgeTargets;
  ExitEdge Run;
  uint32_t RunMix[size_t(Opcode::NumOpcodes)] = {};
  auto Snapshot = [&RunMix](const ExitEdge &From) {
    ExitEdge Out = From;
    Out.Cnt = 0;
    Out.Mix.clear();
    for (size_t I = 0; I < size_t(Opcode::NumOpcodes); ++I)
      if (RunMix[I])
        Out.Mix.emplace_back(Opcode(I), RunMix[I]);
    return Out;
  };
  for (size_t I = 0; I < Body.size(); ++I) {
    const Inst &In = Body[I].In;
    uint64_t StepPC = Body[I].PC;
    B.PCs.push_back(StepPC);
    B.LoPC = std::min(B.LoPC, StepPC);
    B.HiPC = std::max(B.HiPC, StepPC + 4);
    ++Run.Insts;
    ++RunMix[size_t(In.Op)];
    if (isLoad(In.Op))
      ++Run.Loads;
    else if (isStore(In.Op))
      ++Run.Stores;
    if (isCall(In.Op))
      ++Run.Calls;
    else if (isReturn(In.Op))
      ++Run.Returns;
    if (isCondBranch(In.Op)) {
      ++Run.CondBranches;
      bool FollowTaken = Body[I].FollowTaken;
      B.TookBranch[I] = FollowTaken;
      // The unfollowed side retires everything up to and including this
      // branch; it is the taken side exactly when the trace follows the
      // fall-through.
      ExitEdge Edge = Snapshot(Run);
      Edge.TakenBranches = Run.TakenBranches + (FollowTaken ? 0 : 1);
      B.Exits.push_back(std::move(Edge));
      EdgeTargets.push_back(FollowTaken
                                ? StepPC + 4
                                : StepPC + 4 + uint64_t(int64_t(In.Disp)) * 4);
      Run.TakenBranches += FollowTaken ? 1 : 0;
    }
  }
  // Trace-end edge: the whole trace retired. For a direct end, Cur is the
  // successor PC the exit publishes.
  B.Exits.push_back(Snapshot(Run));
  EdgeTargets.push_back(Cur);

  TranslateCtx Ctx(*this, Mach, B, Body, EdgeTargets, EndsIndirect);
  Ctx.emitBlock();

  uint8_t *Base = commitCode(Ctx.E.bytes());
  // Resolve the cross-section targets now that the trace has an address.
  for (size_t SiteOff : Ctx.ThunkSites) {
    int32_t Rel = int32_t(int64_t(uint64_t(ExitThunk)) -
                          int64_t(uint64_t(Base + SiteOff) + 4));
    std::memcpy(Base + SiteOff, &Rel, 4);
  }
  for (const TranslateCtx::AbsSite &A : Ctx.AbsSites) {
    uint64_t V = uint64_t(reinterpret_cast<uintptr_t>(Base + A.JmpOff));
    std::memcpy(Base + A.ImmOff, &V, 8);
  }
  makeExecutable();

  B.Code = Base;
  TranslatedBlock *Ret = &B;
  Blocks[PC] = std::move(MetaPtr);
  ++Perf.BlocksTranslated;
  return Ret;
}

#endif // __x86_64__
