//===- sim/dbt/Emitter.h - Minimal x86-64 machine-code emitter --*- C++ -*-===//
//
// Just enough of an assembler for the DBT block translator: 64-bit ALU
// forms, loads/stores with [base + disp] and [base + index + disp]
// addressing, setcc, near jumps with back-patchable rel32 targets, and
// absolute 64-bit immediates. Encodings follow the Intel SDM; REX is
// emitted whenever an extended register or 64-bit operand needs it.
//
// The emitter builds into a byte vector; the code cache copies the bytes
// into executable memory and resolves cross-block rel32 targets there.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_DBT_EMITTER_H
#define ATOM_SIM_DBT_EMITTER_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace atom {
namespace sim {
namespace dbt {

/// Host register numbers (x86-64 encoding order).
enum HostReg : unsigned {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3,
  RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8,  R9 = 9,  R10 = 10, R11 = 11,
  R12 = 12, R13 = 13, R14 = 14, R15 = 15,
  NoHostReg = 255,
};

/// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum Cond : uint8_t {
  CondO = 0x0, CondNO = 0x1, CondB = 0x2, CondAE = 0x3,
  CondE = 0x4, CondNE = 0x5, CondBE = 0x6, CondA = 0x7,
  CondS = 0x8, CondNS = 0x9, CondP = 0xA, CondNP = 0xB,
  CondL = 0xC, CondGE = 0xD, CondLE = 0xE, CondG = 0xF,
};

class Emitter {
public:
  const std::vector<uint8_t> &bytes() const { return Buf; }
  size_t size() const { return Buf.size(); }

  //===--- labels and patches ---------------------------------------------===//

  /// A forward-reference site: 4 bytes at Offset hold a rel32 counted from
  /// Offset + 4.
  struct Fixup {
    size_t Offset = 0;
  };

  size_t here() const { return Buf.size(); }

  /// Patches the rel32 at \p F so control reaches buffer offset \p Target.
  void patch(Fixup F, size_t Target) {
    int64_t Rel = int64_t(Target) - int64_t(F.Offset + 4);
    int32_t R32 = int32_t(Rel);
    std::memcpy(&Buf[F.Offset], &R32, 4);
  }

  //===--- moves ----------------------------------------------------------===//

  /// mov r64, imm64 (movabs; shrinks to the 32-bit forms when possible).
  void movImm64(unsigned R, uint64_t V) {
    if (V <= 0x7fffffffull) {
      // mov r32, imm32 zero-extends.
      if (R >= 8)
        b(0x41);
      b(0xB8 | (R & 7));
      d32(uint32_t(V));
      return;
    }
    if (int64_t(V) < 0 && int64_t(V) >= INT32_MIN) {
      rex(1, 0, 0, R);
      b(0xC7);
      modrmReg(0, R);
      d32(uint32_t(V));
      return;
    }
    rex(1, 0, 0, R);
    b(0xB8 | (R & 7));
    d64(V);
  }

  /// mov r64, imm64 in the full 10-byte form regardless of value; returns
  /// the buffer offset of the imm64 field so it can be patched after the
  /// code is placed at its final address.
  size_t movImm64Fixed(unsigned R, uint64_t V) {
    rex(1, 0, 0, R);
    b(0xB8 | (R & 7));
    size_t Off = here();
    d64(V);
    return Off;
  }

  /// mov rDst, rSrc (64-bit).
  void movRR(unsigned Dst, unsigned Src) {
    rex(1, Src, 0, Dst);
    b(0x89);
    modrmReg(Src, Dst);
  }

  /// mov r64, [base + disp].
  void loadRM(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x8B);
    modrmMem(Dst, Base, Disp);
  }
  /// mov [base + disp], r64.
  void storeMR(unsigned Base, int32_t Disp, unsigned Src) {
    rex(1, Src, 0, Base);
    b(0x89);
    modrmMem(Src, Base, Disp);
  }
  /// mov [base + disp], r32/r16/r8 (stores of sub-word guest values).
  void storeMR32(unsigned Base, int32_t Disp, unsigned Src) {
    rexOpt(0, Src, 0, Base);
    b(0x89);
    modrmMem(Src, Base, Disp);
  }
  void storeMR16(unsigned Base, int32_t Disp, unsigned Src) {
    b(0x66);
    rexOpt(0, Src, 0, Base);
    b(0x89);
    modrmMem(Src, Base, Disp);
  }
  void storeMR8(unsigned Base, int32_t Disp, unsigned Src) {
    // SPL/BPL/SIL/DIL need a REX prefix even without extension bits.
    if (Src >= 4)
      rex(0, Src, 0, Base);
    else
      rexOpt(0, Src, 0, Base);
    b(0x88);
    modrmMem(Src, Base, Disp);
  }

  /// movzx r64, byte/word [base + disp]; mov r32, dword [base+disp] (zext).
  void loadZx8(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x0F); b(0xB6);
    modrmMem(Dst, Base, Disp);
  }
  void loadZx16(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x0F); b(0xB7);
    modrmMem(Dst, Base, Disp);
  }
  void loadZx32(unsigned Dst, unsigned Base, int32_t Disp) {
    rexOpt(0, Dst, 0, Base); // mov r32, m32 zero-extends to 64
    b(0x8B);
    modrmMem(Dst, Base, Disp);
  }
  /// movsxd r64, dword [base + disp].
  void loadSx32(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x63);
    modrmMem(Dst, Base, Disp);
  }

  /// mov r64, [base + index*1 + disp]  (SIB form, scale 1).
  void loadRMIndex(unsigned Dst, unsigned Base, unsigned Index,
                   int32_t Disp) {
    rex(1, Dst, Index, Base);
    b(0x8B);
    sibMem(Dst, Base, Index, Disp);
  }

  /// lea r64, [base + disp].
  void lea(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x8D);
    modrmMem(Dst, Base, Disp);
  }

  /// movsxd r64, r32 / movsx r64, r8/r16 / movzx r64, r8/r16.
  void sext32RR(unsigned Dst, unsigned Src) {
    rex(1, Dst, 0, Src);
    b(0x63);
    modrmReg(Dst, Src);
  }
  void sext8RR(unsigned Dst, unsigned Src) {
    rex(1, Dst, 0, Src);
    b(0x0F); b(0xBE);
    modrmReg(Dst, Src);
  }
  void sext16RR(unsigned Dst, unsigned Src) {
    rex(1, Dst, 0, Src);
    b(0x0F); b(0xBF);
    modrmReg(Dst, Src);
  }
  void zext8RR(unsigned Dst, unsigned Src) {
    rex(1, Dst, 0, Src);
    b(0x0F); b(0xB6);
    modrmReg(Dst, Src);
  }

  //===--- ALU ------------------------------------------------------------===//

  // Binary ops, 64-bit, register-register: op Dst, Src.
  void addRR(unsigned Dst, unsigned Src) { aluRR(0x01, Dst, Src); }
  void subRR(unsigned Dst, unsigned Src) { aluRR(0x29, Dst, Src); }
  void andRR(unsigned Dst, unsigned Src) { aluRR(0x21, Dst, Src); }
  void orRR(unsigned Dst, unsigned Src) { aluRR(0x09, Dst, Src); }
  void xorRR(unsigned Dst, unsigned Src) { aluRR(0x31, Dst, Src); }
  void cmpRR(unsigned A, unsigned B) { aluRR(0x39, A, B); }
  void testRR(unsigned A, unsigned B) { aluRR(0x85, A, B); }

  // op r64, imm32 (sign-extended). /digit selects the operation.
  void addImm(unsigned R, int32_t V) { aluImm(0, R, V); }
  void subImm(unsigned R, int32_t V) { aluImm(5, R, V); }
  void andImm(unsigned R, int32_t V) { aluImm(4, R, V); }
  void orImm(unsigned R, int32_t V) { aluImm(1, R, V); }
  void xorImm(unsigned R, int32_t V) { aluImm(6, R, V); }
  void cmpImm(unsigned R, int32_t V) { aluImm(7, R, V); }

  /// test r8, imm8 (for blbc/blbs and alignment checks).
  void testImm8(unsigned R, uint8_t V) {
    if (R >= 4)
      rex(0, 0, 0, R);
    b(0xF6);
    modrmReg(0, R);
    b(V);
  }

  /// not r64 / neg r64.
  void notR(unsigned R) { unary(2, R); }
  void negR(unsigned R) { unary(3, R); }

  /// imul rDst, rSrc (64-bit, low half).
  void imulRR(unsigned Dst, unsigned Src) {
    rex(1, Dst, 0, Src);
    b(0x0F); b(0xAF);
    modrmReg(Dst, Src);
  }
  /// mul rSrc: rdx:rax = rax * rSrc (unsigned).
  void mulR(unsigned Src) { unary(4, Src); }

  // Shifts by CL and by immediate. /4 shl, /5 shr, /7 sar.
  void shlCl(unsigned R) { shift(4, R); }
  void shrCl(unsigned R) { shift(5, R); }
  void sarCl(unsigned R) { shift(7, R); }
  void shlImm(unsigned R, uint8_t N) { shiftImm(4, R, N); }
  void shrImm(unsigned R, uint8_t N) { shiftImm(5, R, N); }
  void sarImm(unsigned R, uint8_t N) { shiftImm(7, R, N); }

  /// setcc r8 (zeroes the rest of the register via a preceding xor or
  /// an explicit movzx by the caller).
  void setcc(Cond C, unsigned R) {
    if (R >= 4)
      rex(0, 0, 0, R);
    b(0x0F);
    b(0x90 | C);
    modrmReg(0, R);
  }

  /// add r64, [base + index*1 + disp] (TLB bias application).
  void addRMIndex(unsigned Dst, unsigned Base, unsigned Index,
                  int32_t Disp) {
    rex(1, Dst, Index, Base);
    b(0x03);
    sibMem(Dst, Base, Index, Disp);
  }
  /// cmp r64, [base + index*1 + disp] (TLB tag probe).
  void cmpRMIndex(unsigned A, unsigned Base, unsigned Index, int32_t Disp) {
    rex(1, A, Index, Base);
    b(0x3B);
    sibMem(A, Base, Index, Disp);
  }

  /// Scaled memory loads/stores through a host pointer in \p Base.
  void loadMem(unsigned Dst, unsigned Base, unsigned SizeLog2, bool Sext) {
    switch (SizeLog2) {
    case 0: Sext ? sextLoad(0xBE, Dst, Base) : zextLoad(0xB6, Dst, Base); break;
    case 1: Sext ? sextLoad(0xBF, Dst, Base) : zextLoad(0xB7, Dst, Base); break;
    case 2:
      if (Sext) {
        rex(1, Dst, 0, Base);
        b(0x63);
        modrmMem(Dst, Base, 0);
      } else {
        rexOpt(0, Dst, 0, Base);
        b(0x8B);
        modrmMem(Dst, Base, 0);
      }
      break;
    default:
      rex(1, Dst, 0, Base);
      b(0x8B);
      modrmMem(Dst, Base, 0);
      break;
    }
  }
  void storeMem(unsigned Base, unsigned Src, unsigned SizeLog2) {
    switch (SizeLog2) {
    case 0: storeMR8(Base, 0, Src); break;
    case 1: storeMR16(Base, 0, Src); break;
    case 2: storeMR32(Base, 0, Src); break;
    default: storeMR(Base, 0, Src); break;
    }
  }

  /// inc qword [r64].
  void incMem(unsigned Base) {
    rex(1, 0, 0, Base);
    b(0xFF);
    modrmMem(0, Base, 0);
  }
  /// add qword [base + disp], imm32.
  void addMemImm(unsigned Base, int32_t Disp, int32_t V) {
    rex(1, 0, 0, Base);
    b(0x81);
    modrmMem(0, Base, Disp);
    d32(uint32_t(V));
  }
  /// sub qword [base + disp], imm32.
  void subMemImm(unsigned Base, int32_t Disp, int32_t V) {
    rex(1, 0, 0, Base);
    b(0x81);
    modrmMem(5, Base, Disp);
    d32(uint32_t(V));
  }
  /// cmp qword [base + disp], imm32.
  void cmpMemImm(unsigned Base, int32_t Disp, int32_t V) {
    rex(1, 0, 0, Base);
    b(0x81);
    modrmMem(7, Base, Disp);
    d32(uint32_t(V));
  }
  /// mov qword [base + disp], imm32 (sign-extended).
  void storeMemImm(unsigned Base, int32_t Disp, int32_t V) {
    rex(1, 0, 0, Base);
    b(0xC7);
    modrmMem(0, Base, Disp);
    d32(uint32_t(V));
  }

  //===--- control flow ---------------------------------------------------===//

  /// jmp rel32; returns the fixup for later patching.
  Fixup jmp() {
    b(0xE9);
    Fixup F{here()};
    d32(0);
    return F;
  }
  /// jcc rel32.
  Fixup jcc(Cond C) {
    b(0x0F);
    b(0x80 | C);
    Fixup F{here()};
    d32(0);
    return F;
  }
  /// call rax-indirect through an absolute helper address.
  void callAbs(uint64_t Target) {
    movImm64(RAX, Target);
    // call rax
    b(0xFF);
    modrmReg(2, RAX);
  }
  /// jmp r64 (register-indirect).
  void jmpReg(unsigned R) {
    if (R >= 8)
      b(0x41);
    b(0xFF);
    modrmReg(4, R);
  }
  void ret() { b(0xC3); }
  void push(unsigned R) {
    if (R >= 8)
      b(0x41);
    b(0x50 | (R & 7));
  }
  void pop(unsigned R) {
    if (R >= 8)
      b(0x41);
    b(0x58 | (R & 7));
  }
  /// cdq/cqo-free zeroing idiom.
  void zero(unsigned R) { rexOpt(0, R, 0, R); b(0x31); modrmReg(R, R); }

private:
  std::vector<uint8_t> Buf;

  void b(uint8_t V) { Buf.push_back(V); }
  void d32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(uint8_t(V >> (8 * I)));
  }
  void d64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(uint8_t(V >> (8 * I)));
  }

  void rex(unsigned W, unsigned R, unsigned X, unsigned B_) {
    b(uint8_t(0x40 | (W << 3) | ((R >> 3) << 2) | ((X >> 3) << 1) |
              (B_ >> 3)));
  }
  /// REX only when an extension bit is needed.
  void rexOpt(unsigned W, unsigned R, unsigned X, unsigned B_) {
    if (W || R >= 8 || X >= 8 || B_ >= 8)
      rex(W, R, X, B_);
  }

  void modrmReg(unsigned Reg, unsigned Rm) {
    b(uint8_t(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  /// [base + disp]; handles the RSP SIB escape and the RBP/R13 disp rules.
  void modrmMem(unsigned Reg, unsigned Base, int32_t Disp) {
    unsigned BaseLow = Base & 7;
    bool NeedDisp8 = Disp != 0 || BaseLow == 5; // rbp/r13 require a disp
    if (Disp >= -128 && Disp <= 127) {
      b(uint8_t((NeedDisp8 ? 0x40 : 0x00) | ((Reg & 7) << 3) | BaseLow));
      if (BaseLow == 4)
        b(0x24); // SIB: base only
      if (NeedDisp8)
        b(uint8_t(int8_t(Disp)));
    } else {
      b(uint8_t(0x80 | ((Reg & 7) << 3) | BaseLow));
      if (BaseLow == 4)
        b(0x24);
      d32(uint32_t(Disp));
    }
  }

  /// [base + index*1 + disp] via SIB.
  void sibMem(unsigned Reg, unsigned Base, unsigned Index, int32_t Disp) {
    unsigned BaseLow = Base & 7;
    bool NeedDisp8 = Disp != 0 || BaseLow == 5;
    uint8_t Sib = uint8_t(((Index & 7) << 3) | BaseLow);
    if (Disp >= -128 && Disp <= 127) {
      b(uint8_t((NeedDisp8 ? 0x44 : 0x04) | ((Reg & 7) << 3)));
      b(Sib);
      if (NeedDisp8)
        b(uint8_t(int8_t(Disp)));
    } else {
      b(uint8_t(0x84 | ((Reg & 7) << 3)));
      b(Sib);
      d32(uint32_t(Disp));
    }
  }

  void aluRR(uint8_t Op, unsigned Rm, unsigned Reg) {
    rex(1, Reg, 0, Rm);
    b(Op);
    modrmReg(Reg, Rm);
  }
  void aluImm(unsigned Digit, unsigned R, int32_t V) {
    rex(1, 0, 0, R);
    if (V >= -128 && V <= 127) {
      b(0x83);
      modrmReg(Digit, R);
      b(uint8_t(int8_t(V)));
    } else {
      b(0x81);
      modrmReg(Digit, R);
      d32(uint32_t(V));
    }
  }
  void unary(unsigned Digit, unsigned R) {
    rex(1, 0, 0, R);
    b(0xF7);
    modrmReg(Digit, R);
  }
  void shift(unsigned Digit, unsigned R) {
    rex(1, 0, 0, R);
    b(0xD3);
    modrmReg(Digit, R);
  }
  void shiftImm(unsigned Digit, unsigned R, uint8_t N) {
    rex(1, 0, 0, R);
    b(0xC1);
    modrmReg(Digit, R);
    b(N);
  }
  void zextLoad(uint8_t Op, unsigned Dst, unsigned Base) {
    rex(1, Dst, 0, Base);
    b(0x0F); b(Op);
    modrmMem(Dst, Base, 0);
  }
  void sextLoad(uint8_t Op, unsigned Dst, unsigned Base) {
    rex(1, Dst, 0, Base);
    b(0x0F); b(Op);
    modrmMem(Dst, Base, 0);
  }
};

} // namespace dbt
} // namespace sim
} // namespace atom

#endif // ATOM_SIM_DBT_EMITTER_H
