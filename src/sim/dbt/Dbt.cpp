//===- sim/dbt/Dbt.cpp - Code cache, dispatcher glue, helpers -------------===//

#include "sim/dbt/Dbt.h"
#include "sim/dbt/Emitter.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <sys/mman.h>
#define ATOM_DBT_HOST 1
#else
#define ATOM_DBT_HOST 0
#endif

using namespace atom;
using namespace atom::sim;
using namespace atom::sim::dbt;
using namespace atom::isa;

// The generated code addresses DbtState fields by these offsets.
static_assert(offsetof(DbtState, Regs) == 0);
static_assert(offsetof(DbtState, Budget) == 8);
static_assert(offsetof(DbtState, ExitPC) == 16);
static_assert(offsetof(DbtState, ExitReason) == 24);
static_assert(offsetof(DbtState, ExitIndex) == 32);
static_assert(offsetof(DbtState, ChainFrom) == 40);
static_assert(offsetof(DbtState, Unaligned) == 48);
static_assert(offsetof(DbtState, RdTlb) == 72);
static_assert(offsetof(DbtState, WrTlb) == 72 + 32 * TlbSlots);
static_assert(offsetof(DbtState, Ibtc) == 72 + 64 * TlbSlots);
static_assert(sizeof(TlbEntry) == 32);
static_assert(sizeof(IbtcEntry) == 16);

namespace {
constexpr size_t CacheBytesTotal = 16 * 1024 * 1024;
} // namespace

EnvMode dbt::envMode() {
  static EnvMode Mode = [] {
    const char *V = std::getenv("ATOM_SIM_DBT");
    if (!V)
      return EnvMode::Default;
    std::string S(V);
    if (S == "off" || S == "0" || S == "no")
      return EnvMode::Off;
    if (S == "force")
      return EnvMode::Force;
    return EnvMode::Default;
  }();
  return Mode;
}

//===----------------------------------------------------------------------===//
// Runtime helpers called from generated code
//===----------------------------------------------------------------------===//
//
// Every slow path funnels through sim::Memory, so the fault semantics are
// the interpreter's own: a failed access records the precise first fault
// and the helper requests a side exit; the dispatcher then re-executes the
// instruction in the checked loop, which re-discovers the identical trap.

namespace {

inline void requestSideExit(DbtState *S, uint64_t Idx) {
  S->ExitReason = uint64_t(ExitReason::Fault);
  S->ExitIndex = Idx;
}

/// Installs a TLB entry for the accessible span of \p Addr's page. Spans
/// shorter than 8 bytes are skipped: the inline probe's conservative
/// `addr <= Hi - 8` bound could never hit them.
inline void tryFillTlb(DbtState *S, uint64_t Addr, bool IsWrite) {
  Memory &Mem = *static_cast<Memory *>(S->Mem);
  uint64_t Lo = 0, Hi = 0;
  uint8_t *Host = Mem.spanFor(Addr, IsWrite, Lo, Hi);
  if (!Host || Hi - Lo < 8)
    return;
  TlbEntry &E = (IsWrite ? S->WrTlb : S->RdTlb)
      [(Addr >> 13) & (TlbSlots - 1)];
  E.Lo = Lo;
  E.HiM8 = Hi - 8;
  E.Bias = uint64_t(reinterpret_cast<uintptr_t>(Host)) - Lo;
  Machine *M = static_cast<Machine *>(S->M);
  ++M->dbtTier()->perfMutable().TlbFills;
}

} // namespace

extern "C" {

/// Load slow path. IdxOp = (instruction index << 8) | opcode.
uint64_t atomDbtLoad(DbtState *S, uint64_t Addr, uint64_t IdxOp) {
  Memory &Mem = *static_cast<Memory *>(S->Mem);
  ++static_cast<Machine *>(S->M)->dbtTier()->perfMutable().SlowMemOps;
  Opcode Op = Opcode(IdxOp & 0xFF);
  uint64_t Idx = IdxOp >> 8;
  unsigned Size = memAccessSize(Op);
  bool Misaligned = (Addr & (Size - 1)) != 0;
  if (Misaligned && S->Opts->StrictAlignment) {
    requestSideExit(S, Idx); // checked loop raises the Unaligned trap
    return 0;
  }
  uint64_t V = 0;
  switch (Op) {
  case Opcode::Ldbu: V = Mem.load8(Addr); break;
  case Opcode::Ldwu: V = Mem.load16(Addr); break;
  case Opcode::Ldl: V = uint64_t(int64_t(int32_t(Mem.load32(Addr)))); break;
  default: V = Mem.load64(Addr); break;
  }
  if (Mem.memFault().Faulted) {
    // Leave the recorded fault in place: the re-executed instruction's
    // own permission check fails again and memTrap() reports this exact
    // first-fault address.
    requestSideExit(S, Idx);
    return 0;
  }
  if (Misaligned)
    ++S->St->UnalignedAccesses;
  // Fill regardless of alignment: the span entry serves any address in
  // range, and when strict alignment is off the inline path handles
  // misaligned hits natively.
  tryFillTlb(S, Addr, /*IsWrite=*/false);
  return V;
}

/// Store slow path.
void atomDbtStore(DbtState *S, uint64_t Addr, uint64_t Val, uint64_t IdxOp) {
  Memory &Mem = *static_cast<Memory *>(S->Mem);
  ++static_cast<Machine *>(S->M)->dbtTier()->perfMutable().SlowMemOps;
  Opcode Op = Opcode(IdxOp & 0xFF);
  uint64_t Idx = IdxOp >> 8;
  unsigned Size = memAccessSize(Op);
  bool Misaligned = (Addr & (Size - 1)) != 0;
  if (Misaligned && S->Opts->StrictAlignment) {
    requestSideExit(S, Idx);
    return;
  }
  switch (Op) {
  case Opcode::Stb: Mem.store8(Addr, uint8_t(Val)); break;
  case Opcode::Stw: Mem.store16(Addr, uint16_t(Val)); break;
  case Opcode::Stl: Mem.store32(Addr, uint32_t(Val)); break;
  default: Mem.store64(Addr, Val); break;
  }
  if (Mem.memFault().Faulted) {
    requestSideExit(S, Idx);
    return;
  }
  if (Misaligned)
    ++S->St->UnalignedAccesses;
  tryFillTlb(S, Addr, /*IsWrite=*/true);
}

/// Divide/remainder, matching the interpreter's 0-divisor and
/// INT64_MIN/-1 semantics; opts into the Arithmetic trap by side exit.
uint64_t atomDbtDiv(DbtState *S, uint64_t A, uint64_t B, uint64_t IdxOp) {
  Opcode Op = Opcode(IdxOp & 0xFF);
  uint64_t Idx = IdxOp >> 8;
  int64_t SA = int64_t(A), SB = int64_t(B);
  if (B == 0) {
    if (S->Opts->TrapOnDivideByZero) {
      requestSideExit(S, Idx);
      return 0;
    }
    return 0;
  }
  switch (Op) {
  case Opcode::Divq:
    return (SA == INT64_MIN && SB == -1) ? uint64_t(INT64_MIN)
                                         : uint64_t(SA / SB);
  case Opcode::Remq:
    return (SA == INT64_MIN && SB == -1) ? 0 : uint64_t(SA % SB);
  case Opcode::Divqu:
    return A / B;
  default: // Remqu
    return A % B;
  }
}

} // extern "C"

//===----------------------------------------------------------------------===//
// DbtTier
//===----------------------------------------------------------------------===//

bool DbtTier::supported() {
#if ATOM_DBT_HOST
  return true;
#else
  return false;
#endif
}

DbtTier::DbtTier(Machine &Mach) : M(&Mach), State(new DbtState()) {
#if ATOM_DBT_HOST
  void *P = mmap(nullptr, CacheBytesTotal, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P != MAP_FAILED) {
    Cache = static_cast<uint8_t *>(P);
    CacheSize = CacheBytesTotal;
    CacheWritable = true;
    emitThunks();
    makeExecutable();
  }
#endif
}

DbtTier::~DbtTier() {
#if ATOM_DBT_HOST
  if (Cache)
    munmap(Cache, CacheSize);
#endif
}

void DbtTier::attach(Machine &Mach) {
  M = &Mach;
  DbtState &S = *State;
  S.Regs = Mach.Regs;
  S.M = &Mach;
  S.Mem = &Mach.Mem;
  S.St = &Mach.St;
  S.Opts = &Mach.Opts;
  Mach.Mem.setInvalidationListener(
      [this](uint64_t Lo, uint64_t Hi) { invalidateRange(Lo, Hi); });
}

void DbtTier::makeWritable() {
#if ATOM_DBT_HOST
  if (!CacheWritable) {
    mprotect(Cache, CacheSize, PROT_READ | PROT_WRITE);
    CacheWritable = true;
  }
#endif
}

void DbtTier::makeExecutable() {
#if ATOM_DBT_HOST
  if (CacheWritable) {
    mprotect(Cache, CacheSize, PROT_READ | PROT_EXEC);
    CacheWritable = false;
  }
#endif
}

void DbtTier::emitThunks() {
  // Enter: save callee-saved state, pin r15 = DbtState*, r14 = guest
  // registers, r13 = inline-TLB base, then tail-jump into the block. The
  // extra 8-byte adjustment keeps rsp 16-aligned at every helper call
  // site inside translated code.
  Emitter E;
  E.push(RBX); E.push(RBP); E.push(R12);
  E.push(R13); E.push(R14); E.push(R15);
  E.subImm(RSP, 8);
  E.movRR(R15, RDI);
  E.loadRM(R14, RDI, 0);                       // Regs
  E.lea(R13, RDI, int32_t(offsetof(DbtState, RdTlb)));
  E.jmpReg(RSI);

  size_t ExitOff = E.size();
  E.addImm(RSP, 8);
  E.pop(R15); E.pop(R14); E.pop(R13);
  E.pop(R12); E.pop(RBP); E.pop(RBX);
  E.ret();

  std::memcpy(Cache, E.bytes().data(), E.size());
  CacheUsed = (E.size() + 15) & ~size_t(15);
  Enter = reinterpret_cast<EnterFn>(Cache);
  ExitThunk = Cache + ExitOff;
  Perf.CacheBytes = CacheUsed;
}

uint8_t *DbtTier::commitCode(const std::vector<uint8_t> &Bytes) {
  if (CacheUsed + Bytes.size() > CacheSize)
    flushCache();
  makeWritable();
  uint8_t *At = Cache + CacheUsed;
  std::memcpy(At, Bytes.data(), Bytes.size());
  CacheUsed = (CacheUsed + Bytes.size() + 15) & ~size_t(15);
  Perf.CacheBytes = CacheUsed;
  return At;
}

void DbtTier::flushCache() {
  foldStats(PendingStats);
  PendingStatsDirty = true;
  Blocks.clear();
  // Every cached indirect-branch target points into the dead cache.
  for (size_t I = 0; I < TlbSlots; ++I)
    State->Ibtc[I] = IbtcEntry();
  makeWritable();
  emitThunks(); // resets CacheUsed past the fresh thunks
  ++Perf.CacheFlushes;
}

void DbtTier::execute(TranslatedBlock *B) {
  DbtState &S = *State;
  S.ExitReason = uint64_t(ExitReason::Next);
  S.ExitIndex = 0;
  S.ChainFrom = 0;
  makeExecutable();
  Enter(&S, B->Code);
  if (S.ExitReason == uint64_t(ExitReason::Next) && S.ChainFrom) {
    auto It = Blocks.find(S.ExitPC);
    if (It != Blocks.end())
      chain(It->second.get());
  }
}

void DbtTier::chain(TranslatedBlock *Target) {
  uint8_t *Site = reinterpret_cast<uint8_t *>(State->ChainFrom);
  makeWritable();
  int64_t Rel = int64_t(uint64_t(Target->Code)) - int64_t(uint64_t(Site) + 5);
  Site[0] = 0xE9;
  int32_t R32 = int32_t(Rel);
  std::memcpy(Site + 1, &R32, 4);
  makeExecutable();
  Target->Incoming.push_back(Site);
  ++Perf.ChainLinks;
}

bool DbtTier::shouldTranslate(uint64_t PC, uint32_t Threshold) {
  if (!Cache || Untranslatable.count(PC))
    return false;
  uint32_t C = ++ExecCounts[PC];
  return C > Threshold;
}

static void addStatsInto(Stats &Dst, const Stats &Src) {
  Dst.Instructions += Src.Instructions;
  Dst.Loads += Src.Loads;
  Dst.Stores += Src.Stores;
  Dst.CondBranches += Src.CondBranches;
  Dst.TakenBranches += Src.TakenBranches;
  Dst.Calls += Src.Calls;
  Dst.Returns += Src.Returns;
  Dst.Syscalls += Src.Syscalls;
  Dst.UnalignedAccesses += Src.UnalignedAccesses;
  for (size_t I = 0; I < Src.PerOpcode.size(); ++I)
    Dst.PerOpcode[I] += Src.PerOpcode[I];
}

static void foldBlock(Stats &St, TranslatedBlock &B) {
  for (ExitEdge &E : B.Exits) {
    uint64_t N = E.Cnt;
    if (!N)
      continue;
    St.Instructions += N * E.Insts;
    St.Loads += N * E.Loads;
    St.Stores += N * E.Stores;
    St.CondBranches += N * E.CondBranches;
    St.TakenBranches += N * E.TakenBranches;
    St.Calls += N * E.Calls;
    St.Returns += N * E.Returns;
    for (const auto &[Op, C] : E.Mix)
      St.PerOpcode[size_t(Op)] += N * C;
    E.Cnt = 0;
  }
}

void DbtTier::foldStats(Stats &St) {
  if (State->Unaligned) {
    St.UnalignedAccesses += State->Unaligned;
    State->Unaligned = 0;
  }
  if (PendingStatsDirty && &St != &PendingStats) {
    addStatsInto(St, PendingStats);
    PendingStats = Stats();
    PendingStatsDirty = false;
  }
  for (auto &[PC, B] : Blocks) {
    (void)PC;
    foldBlock(St, *B);
  }
}

void DbtTier::commitSideExit(TranslatedBlock *B, Stats &St) {
  uint64_t Idx = State->ExitIndex;
  ++Perf.SideExits;
  // The block consumed its whole length from the budget up front; refund
  // the unretired tail (the faulting instruction retires nothing).
  State->Budget += B->NumInsts - Idx;
  const Machine &Mach = *M;
  for (uint64_t I = 0; I < Idx; ++I) {
    // Traces are not contiguous: resolve each retired instruction by its
    // recorded PC. Interior branches that retired took the trace's
    // followed direction (otherwise execution would have left earlier).
    const Inst &In = Mach.decodedWord((B->PCs[I] - Mach.textStart()) / 4);
    ++St.Instructions;
    ++St.PerOpcode[size_t(In.Op)];
    if (isLoad(In.Op))
      ++St.Loads;
    else if (isStore(In.Op))
      ++St.Stores;
    if (isCondBranch(In.Op)) {
      ++St.CondBranches;
      St.TakenBranches += B->TookBranch[I];
    } else if (isCall(In.Op)) {
      ++St.Calls;
    } else if (isReturn(In.Op)) {
      ++St.Returns;
    }
  }
}

void DbtTier::invalidateRange(uint64_t Lo, uint64_t Hi) {
  // TLB pages intersecting the range can no longer be trusted.
  DbtState &S = *State;
  bool Full = Lo == 0 && Hi == ~uint64_t(0);
  for (size_t I = 0; I < TlbSlots; ++I) {
    TlbEntry &R = S.RdTlb[I]; // entries are spans [Lo, HiM8 + 8)
    if (R.Lo != ~uint64_t(0) && R.Lo < Hi && R.HiM8 + 8 > Lo)
      R = TlbEntry();
    TlbEntry &W = S.WrTlb[I];
    if (W.Lo != ~uint64_t(0) && W.Lo < Hi && W.HiM8 + 8 > Lo)
      W = TlbEntry();
  }
  if (Blocks.empty())
    return;
  if (Full) {
    // Permission geometry changed wholesale (addRegion/enableProtection):
    // safest is a clean slate.
    flushCache();
    makeExecutable();
    return;
  }
  // Surgical: drop translated blocks whose guest range intersects, fold
  // their pending counters, and unlink any chain jumps into them.
  bool Touched = false;
  for (auto It = Blocks.begin(); It != Blocks.end();) {
    TranslatedBlock &B = *It->second;
    if (B.LoPC < Hi && B.HiPC > Lo) {
      foldBlock(PendingStats, B);
      PendingStatsDirty = true;
      // A cached indirect-branch target for this block would jump into
      // freed code.
      IbtcEntry &IE = S.Ibtc[(B.StartPC >> 2) & (TlbSlots - 1)];
      if (IE.Tag == B.StartPC)
        IE = IbtcEntry();
      if (!B.Incoming.empty()) {
        makeWritable();
        for (uint8_t *Site : B.Incoming) {
          // Restore the fall-through (rel32 = 0): the slow exit path that
          // publishes ExitPC/ChainFrom lives right after the 5-byte site.
          Site[0] = 0xE9;
          std::memset(Site + 1, 0, 4);
        }
        Touched = true;
      }
      ++Perf.Invalidations;
      It = Blocks.erase(It);
    } else {
      ++It;
    }
  }
  if (Touched)
    makeExecutable();
}
