//===- sim/Inject.h - Deterministic fault injection -------------*- C++ -*-===//
//
// A seeded fault injector for the simulator: at a chosen retired-
// instruction count it flips a register bit, corrupts a byte of the data
// image, scrambles a decoded text word, or makes the next VFS system call
// fail. All randomness comes from a per-spec xorshift64 seed, so a given
// spec reproduces byte-identical outcomes run after run — the test vehicle
// for the trap taxonomy and crash-surviving analysis, and a workload class
// of its own (axp-run --inject kind@icount[,seed]).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_INJECT_H
#define ATOM_SIM_INJECT_H

#include "sim/Machine.h"

#include <string>
#include <vector>

namespace atom {
namespace sim {

/// One injection: what to corrupt, when, and with which RNG seed.
struct InjectSpec {
  enum class Kind {
    RegBit, ///< Flip one bit of one integer register.
    MemBit, ///< Flip one bit of one byte in the static data image.
    Decode, ///< XOR a random text word and re-decode it.
    Io,     ///< Make the next VFS syscall return -1.
  };
  Kind K = Kind::RegBit;
  uint64_t ICount = 0; ///< Fires once this many instructions have retired.
  uint64_t Seed = 1;
};

/// Parses "kind@icount[,seed]" where kind is regbit|membit|decode|io.
/// Returns false with \p Err set on malformed input.
bool parseInjectSpec(const std::string &Text, InjectSpec &Spec,
                     std::string &Err);

/// Name of \p K ("regbit", ...).
const char *injectKindName(InjectSpec::Kind K);

/// Applies \p Spec's corruption to \p M immediately. Exposed for tests;
/// normal use is armInjections().
void applyInjection(const InjectSpec &Spec, Machine &M);

/// Arms every spec as a pre-instruction hook on \p M.
void armInjections(const std::vector<InjectSpec> &Specs, Machine &M);

} // namespace sim
} // namespace atom

#endif // ATOM_SIM_INJECT_H
