//===- sim/Machine.cpp ----------------------------------------------------===//

#include "sim/Machine.h"

#include "sim/dbt/Dbt.h"

#include <algorithm>
#include <cstring>

using namespace atom;
using namespace atom::sim;
using namespace atom::isa;
using namespace atom::obj;

const char *sim::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None: return "none";
  case TrapKind::IllegalInstruction: return "illegal-instruction";
  case TrapKind::BadPC: return "bad-pc";
  case TrapKind::UnmappedAccess: return "unmapped-access";
  case TrapKind::WriteProtected: return "write-protected";
  case TrapKind::Unaligned: return "unaligned";
  case TrapKind::StackGuard: return "stack-guard";
  case TrapKind::Arithmetic: return "arithmetic";
  case TrapKind::BadSyscall: return "bad-syscall";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

void Memory::addRegion(uint64_t Start, uint64_t End, uint8_t Perms,
                       TrapKind Kind) {
  if (Start >= End)
    return;
  Region R;
  R.Start = Start;
  R.End = End;
  R.Perms = Perms;
  R.Kind = Kind;
  auto It = std::upper_bound(
      Regions.begin(), Regions.end(), Start,
      [](uint64_t S, const Region &Reg) { return S < Reg.Start; });
  Regions.insert(It, R);
  LastRegion = size_t(-1);
  invalidateTranslation();
}

void Memory::invalidateTranslation() {
  for (TransEntry &E : Trans)
    E = TransEntry();
  ++P.TransInvalidations;
  if (InvalListener)
    InvalListener(0, ~uint64_t(0));
}

void Memory::invalidateTranslation(uint64_t Lo, uint64_t Hi) {
  for (TransEntry &E : Trans)
    if (E.PageBase != ~uint64_t(0) && E.PageBase < Hi &&
        E.PageBase + obj::PageSize > Lo)
      E = TransEntry();
  ++P.TransRangedInvalidations;
  if (InvalListener)
    InvalListener(Lo, Hi);
}

uint8_t *Memory::spanFor(uint64_t Addr, bool IsWrite, uint64_t &Lo,
                         uint64_t &Hi) {
  const uint64_t PageBase = Addr & ~uint64_t(obj::PageSize - 1);
  const uint64_t PageEnd = PageBase + obj::PageSize;
  if (!ProtectionOn) {
    Lo = PageBase;
    Hi = PageEnd;
    return pagePtr(PageBase);
  }
  const uint8_t Need = IsWrite ? PermWrite : PermRead;
  // Last region with Start <= Addr (same search as allowedSlow, but with
  // no fault recording — an uncovered address is simply not cacheable).
  size_t L = 0, H = Regions.size();
  while (L < H) {
    size_t Mid = (L + H) / 2;
    if (Regions[Mid].Start <= Addr)
      L = Mid + 1;
    else
      H = Mid;
  }
  if (L == 0)
    return nullptr;
  const Region &R = Regions[L - 1];
  if (Addr >= R.End || !(R.Perms & Need))
    return nullptr;
  Lo = std::max(PageBase, R.Start);
  Hi = std::min(PageEnd, R.End);
  return pagePtr(PageBase) + (Lo - PageBase);
}

void Memory::fillTranslation(uint64_t Addr) {
  uint64_t Base = Addr & ~(obj::PageSize - 1);
  TransEntry &E = Trans[transIndex(Addr)];
  E.Host = pagePtr(Addr);
  if (!ProtectionOn) {
    E.PageBase = Base;
    E.Lo = 0;
    E.Hi = uint32_t(obj::PageSize);
    E.Perms = PermRead | PermWrite | PermExec;
    ++P.TransFills;
    return;
  }
  const Region &R = Regions[LastRegion];
  if (Addr < R.Start || Addr >= R.End) {
    E.PageBase = ~uint64_t(0); // stale LastRegion; never cache a guess
    return;
  }
  E.PageBase = Base;
  E.Lo = uint32_t(R.Start > Base ? R.Start - Base : 0);
  uint64_t HiAddr = std::min(Base + obj::PageSize, R.End);
  E.Hi = uint32_t(HiAddr - Base);
  E.Perms = R.Perms;
  ++P.TransFills;
}

void Memory::recordFault(uint64_t Addr, bool IsWrite, TrapKind Kind) {
  if (Fault.Faulted)
    return; // first violation wins
  Fault.Faulted = true;
  Fault.Addr = Addr;
  Fault.IsWrite = IsWrite;
  Fault.Kind = Kind;
}

bool Memory::allowedSlow(uint64_t Addr, uint64_t Size, bool IsWrite) {
  const uint8_t Need = IsWrite ? PermWrite : PermRead;
  // Index of the first region with Start > Addr.
  size_t Lo = 0, Hi = Regions.size();
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Regions[Mid].Start <= Addr)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo == 0) {
    recordFault(Addr, IsWrite, TrapKind::UnmappedAccess);
    return false;
  }
  // Walk forward through adjacent regions until the access is covered.
  uint64_t Cur = Addr;
  uint64_t Left = Size;
  for (size_t Idx = Lo - 1; Idx < Regions.size(); ++Idx) {
    const Region &R = Regions[Idx];
    if (Cur < R.Start || Cur >= R.End) {
      recordFault(Cur, IsWrite, TrapKind::UnmappedAccess);
      return false;
    }
    if (!(R.Perms & Need)) {
      recordFault(Cur, IsWrite, R.Kind);
      return false;
    }
    uint64_t Span = R.End - Cur;
    if (Span >= Left) {
      LastRegion = Idx;
      return true;
    }
    Cur += Span;
    Left -= Span;
  }
  recordFault(Cur, IsWrite, TrapKind::UnmappedAccess);
  return false;
}

uint8_t *Memory::pagePtr(uint64_t Addr) {
  uint64_t Page = Addr / PageSize;
  if (Page == CachedPage)
    return CachedPtr;
  auto It = Pages.find(Page);
  if (It == Pages.end()) {
    auto Mem = std::make_unique<uint8_t[]>(PageSize);
    std::memset(Mem.get(), 0, PageSize);
    It = Pages.emplace(Page, std::move(Mem)).first;
  }
  CachedPage = Page;
  CachedPtr = It->second.get();
  return CachedPtr;
}

// Every scalar entry point probes the direct-mapped translation cache
// first: one mask, one compare against the cached page, one in-page range
// check, one memcpy. A hit is by construction inside one region with the
// needed permission, so it cannot fault and the precise-trap contract is
// untouched. Misses take the historical allowed() + pagePtr() path and
// install the entry for next time.
#define ATOM_MEM_SCALAR(N, T)                                                  \
  T Memory::load##N(uint64_t Addr) {                                           \
    uint64_t Off = Addr & (obj::PageSize - 1);                                 \
    const TransEntry &E = Trans[transIndex(Addr)];                             \
    if (E.PageBase == Addr - Off && (E.Perms & PermRead) && Off >= E.Lo &&     \
        Off + sizeof(T) <= E.Hi) {                                             \
      ++P.TransHits;                                                           \
      T V;                                                                     \
      std::memcpy(&V, E.Host + Off, sizeof(T));                                \
      return V;                                                                \
    }                                                                          \
    ++P.TransMisses;                                                           \
    if (!allowed(Addr, sizeof(T), /*IsWrite=*/false))                          \
      return 0;                                                                \
    fillTranslation(Addr);                                                     \
    if (Off + sizeof(T) <= obj::PageSize) {                                    \
      T V;                                                                     \
      std::memcpy(&V, pagePtr(Addr) + Off, sizeof(T));                         \
      return V;                                                                \
    }                                                                          \
    T V = 0;                                                                   \
    for (unsigned I = 0; I < sizeof(T); ++I)                                   \
      V |= T(load8(Addr + I)) << (8 * I);                                      \
    return V;                                                                  \
  }                                                                            \
  void Memory::store##N(uint64_t Addr, T V) {                                  \
    uint64_t Off = Addr & (obj::PageSize - 1);                                 \
    const TransEntry &E = Trans[transIndex(Addr)];                             \
    if (E.PageBase == Addr - Off && (E.Perms & PermWrite) && Off >= E.Lo &&    \
        Off + sizeof(T) <= E.Hi) {                                             \
      ++P.TransHits;                                                           \
      std::memcpy(E.Host + Off, &V, sizeof(T));                                \
      return;                                                                  \
    }                                                                          \
    ++P.TransMisses;                                                           \
    if (!allowed(Addr, sizeof(T), /*IsWrite=*/true))                           \
      return;                                                                  \
    fillTranslation(Addr);                                                     \
    if (Off + sizeof(T) <= obj::PageSize) {                                    \
      std::memcpy(pagePtr(Addr) + Off, &V, sizeof(T));                         \
      return;                                                                  \
    }                                                                          \
    for (unsigned I = 0; I < sizeof(T); ++I)                                   \
      store8(Addr + I, uint8_t(V >> (8 * I)));                                 \
  }

ATOM_MEM_SCALAR(8, uint8_t)
ATOM_MEM_SCALAR(16, uint16_t)
ATOM_MEM_SCALAR(32, uint32_t)
ATOM_MEM_SCALAR(64, uint64_t)
#undef ATOM_MEM_SCALAR

// Bulk paths: validate the whole range once (precise first-fault recording,
// zero side effects on failure), then move page-sized spans. This replaces
// a region search + page-hash probe + permission check per *byte* with one
// check per range and one memcpy per span.
void Memory::writeBytes(uint64_t Addr, const uint8_t *Src, size_t N) {
  if (!N || !validRange(Addr, N, /*IsWrite=*/true))
    return;
  while (N) {
    uint64_t Off = Addr & (obj::PageSize - 1);
    size_t Span = size_t(std::min<uint64_t>(N, obj::PageSize - Off));
    std::memcpy(pagePtr(Addr) + Off, Src, Span);
    ++P.BulkSpans;
    P.BulkBytes += Span;
    Addr += Span;
    Src += Span;
    N -= Span;
  }
}

void Memory::readBytes(uint64_t Addr, uint8_t *Dst, size_t N) {
  if (!N || !validRange(Addr, N, /*IsWrite=*/false))
    return;
  while (N) {
    uint64_t Off = Addr & (obj::PageSize - 1);
    size_t Span = size_t(std::min<uint64_t>(N, obj::PageSize - Off));
    std::memcpy(Dst, pagePtr(Addr) + Off, Span);
    ++P.BulkSpans;
    P.BulkBytes += Span;
    Addr += Span;
    Dst += Span;
    N -= Span;
  }
}

void Memory::poke32(uint64_t Addr, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    pagePtr(Addr + I)[(Addr + I) & (obj::PageSize - 1)] = uint8_t(V >> (8 * I));
}

//===----------------------------------------------------------------------===//
// Machine
//===----------------------------------------------------------------------===//

Machine::Machine(const Executable &Exe, const MachineOptions &Opts)
    : Opts(Opts) {
  TextStart = Exe.TextStart;
  DataStart = Exe.DataStart;
  DataEnd = Exe.DataStart + Exe.Data.size() + Exe.BssSize;
  Mem.writeBytes(Exe.TextStart, Exe.Text.data(), Exe.Text.size());
  Mem.writeBytes(Exe.DataStart, Exe.Data.data(), Exe.Data.size());
  for (const obj::Segment &S : Exe.Segments)
    Mem.writeBytes(S.Addr, S.Bytes.data(), S.Bytes.size());
  // Bss pages are zero on first touch; nothing to do.

  TextWords.resize(Exe.Text.size() / 4);
  Decoded.resize(TextWords.size());
  DecodeOk.resize(Decoded.size());
  for (size_t I = 0; I < Decoded.size(); ++I) {
    TextWords[I] = read32(Exe.Text, I * 4);
    DecodeOk[I] = decode(TextWords[I], Decoded[I]) ? 1 : 0;
  }

  Regs[RegSP] = Exe.StackStart;
  PC = Exe.Entry;

  if (Opts.MemoryProtection) {
    // Figure-4 layout: stack grows down from StackStart (= text start),
    // with an unmapped guard page at its limit; text is read/execute-only;
    // analysis segments sit between text and data; everything from the
    // data segment up (data, bss, sbrk heap) is read/write. The null page
    // and all other gaps stay unmapped so wild pointers trap.
    uint64_t StackTop = Exe.StackStart;
    uint64_t MaxStack = Opts.StackMaxBytes;
    if (MaxStack + 2 * PageSize > StackTop)
      MaxStack = StackTop > 2 * PageSize ? StackTop - 2 * PageSize : 0;
    if (MaxStack) {
      uint64_t StackLimit = StackTop - MaxStack;
      Mem.addRegion(StackLimit - PageSize, StackLimit, Memory::PermNone,
                    TrapKind::StackGuard);
      Mem.addRegion(StackLimit, StackTop,
                    Memory::PermRead | Memory::PermWrite);
    }
    Mem.addRegion(Exe.TextStart, Exe.TextStart + Exe.Text.size(),
                  Memory::PermRead | Memory::PermExec,
                  TrapKind::WriteProtected);
    for (const obj::Segment &S : Exe.Segments)
      Mem.addRegion(S.Addr, S.Addr + S.Bytes.size(),
                    Memory::PermRead | Memory::PermWrite);
    // Data, bss, and the sbrk heap. The heap is a bump allocator with no
    // syscall, so its exact break is invisible here; HeapMaxBytes of
    // headroom past the static image bounds the mapped world instead of
    // extending it to 2^64 — a guest-controlled syscall length far past
    // the break must trap, not be treated as mapped (docs/FAULTS.md).
    uint64_t HeapBase = std::max(Exe.HeapStart, DataEnd);
    uint64_t HeapLimit = ~uint64_t(0);
    if (Opts.HeapMaxBytes && HeapBase + Opts.HeapMaxBytes > HeapBase)
      HeapLimit = HeapBase + Opts.HeapMaxBytes;
    Mem.addRegion(Exe.DataStart, HeapLimit,
                  Memory::PermRead | Memory::PermWrite);
    Mem.enableProtection();
  }
}

RunResult Machine::trap(TrapKind Kind, uint64_t Addr, const std::string &Msg) {
  RunResult R;
  R.Status = RunStatus::Trap;
  R.Trap = Kind;
  R.FaultPC = PC;
  R.FaultAddr = Addr;
  R.FaultMessage = Msg;
  return R;
}

RunResult Machine::memTrap() {
  Memory::MemFault F = Mem.memFault();
  Mem.clearMemFault();
  return trap(F.Kind, F.Addr,
              formatString("%s: %s at address 0x%llx", trapKindName(F.Kind),
                           F.IsWrite ? "store" : "load",
                           (unsigned long long)F.Addr));
}

void Machine::addPreInstHook(uint64_t ICount,
                             std::function<void(Machine &)> Hook) {
  PendingHook H;
  H.At = ICount;
  H.Fn = std::move(Hook);
  Hooks.push_back(std::move(H));
  NextHookAt = std::min(NextHookAt, ICount);
}

void Machine::runPendingHooks() {
  std::vector<PendingHook> Due;
  for (size_t I = 0; I < Hooks.size();) {
    if (Hooks[I].At <= St.Instructions) {
      Due.push_back(std::move(Hooks[I]));
      Hooks.erase(Hooks.begin() + long(I));
    } else {
      ++I;
    }
  }
  NextHookAt = ~uint64_t(0);
  for (const PendingHook &H : Hooks)
    NextHookAt = std::min(NextHookAt, H.At);
  for (PendingHook &H : Due)
    H.Fn(*this);
}

Machine::~Machine() = default;
Machine::Machine(Machine &&) = default;
Machine &Machine::operator=(Machine &&) = default;

const dbt::DbtPerf *Machine::dbtPerf() const {
  return DbtT ? &DbtT->perf() : nullptr;
}

RunResult Machine::run(uint64_t MaxInsts) {
  // The fused fast-path loop elides the per-instruction trace / profile /
  // hook checks and batches Stats, so it is only legal when none of those
  // can observe mid-run state. Anything armed falls back to the fully
  // checked loop — oracle traces and fault-injection runs see behavior
  // identical to the historical interpreter. The DBT tier has the same
  // legality condition plus host support; everything precise it defers
  // back to the interpreter, so dispatching to it here cannot change
  // observable behavior (ctest-enforced).
  if (Opts.EnableFastPath && !Trace && !ProfileOn &&
      NextHookAt == ~uint64_t(0)) {
    ++LP.FastEntries;
    if (Opts.EnableDbt && dbt::DbtTier::supported() &&
        dbt::envMode() != dbt::EnvMode::Off)
      return runDbt(MaxInsts);
    return runLoop</*Fast=*/true>(MaxInsts);
  }
  ++LP.SlowEntries;
  return runLoop</*Fast=*/false>(MaxInsts);
}

RunResult Machine::runDbt(uint64_t MaxInsts) {
  if (!DbtT)
    DbtT = std::make_unique<dbt::DbtTier>(*this);
  DbtT->attach(*this);
  dbt::DbtState &S = DbtT->state();

  uint32_t Threshold = Opts.DbtThreshold;
  if (dbt::envMode() == dbt::EnvMode::Force)
    Threshold = 0;

  uint64_t Remaining = MaxInsts;
  auto Finish = [&](RunResult R) {
    DbtT->foldStats(St);
    return R;
  };

  for (;;) {
    if (Remaining == 0) {
      RunResult R;
      R.Status = RunStatus::FuelExhausted;
      R.FaultPC = PC;
      R.FaultMessage = "instruction budget exhausted";
      return Finish(R);
    }

    dbt::TranslatedBlock *B = DbtT->lookup(PC);
    if (!B && DbtT->shouldTranslate(PC, Threshold))
      B = DbtT->translate(PC);

    if (B) {
      S.Budget = Remaining;
      DbtT->execute(B);
      Remaining = S.Budget;
      if (S.ExitReason == uint64_t(dbt::ExitReason::Next)) {
        PC = S.ExitPC;
        // Publish the successor in the inline indirect-branch target
        // cache so the next jmp/jsr/ret that resolves to this PC jumps
        // straight to its code instead of round-tripping through here.
        if (dbt::TranslatedBlock *NB = DbtT->lookup(PC)) {
          dbt::IbtcEntry &IE = S.Ibtc[(PC >> 2) & (dbt::TlbSlots - 1)];
          IE.Tag = PC;
          IE.Code = uint64_t(reinterpret_cast<uintptr_t>(NB->Code));
        }
        continue;
      }
      if (S.ExitReason == uint64_t(dbt::ExitReason::Fault)) {
        // A helper recorded a precise event mid-block (which may not be
        // the entry block when exits were chained): commit the retired
        // prefix, then re-execute the faulting instruction in the checked
        // interpreter below — it re-discovers the identical trap from the
        // same machine state.
        dbt::TranslatedBlock *FB = DbtT->lookup(S.ExitPC);
        DbtT->commitSideExit(FB, St);
        Remaining = S.Budget;
        PC = FB->PCs[S.ExitIndex]; // traces are not contiguous
      } else {
        // Fuel: the budget cannot cover the block; nothing ran. The
        // interpreter retires the precise tail below.
        PC = S.ExitPC;
      }
    }

    // Interpret one basic block (cold code, fuel tails, or a precise
    // re-execution; anything that ends the run returns from here).
    ++DbtT->perfMutable().InterpFallbacks;
    uint64_t Before = St.Instructions;
    SteppedBlockEnd = false;
    RunResult R = runLoop</*Fast=*/true, /*BlockStep=*/true>(Remaining);
    uint64_t Used = St.Instructions - Before;
    Remaining -= std::min(Used, Remaining);
    if (R.Status != RunStatus::FuelExhausted || !SteppedBlockEnd)
      return Finish(R);
  }
}

template <bool Fast, bool BlockStep>
RunResult Machine::runLoop(uint64_t MaxInsts) {
  const bool Tracing = !Fast && bool(Trace);
  uint64_t Budget = MaxInsts;

  // Scalar stats accumulate in locals. The fast loop commits them only at
  // exits (one batched update per run segment); the checked loop commits
  // at every retirement so hooks and callers observe per-instruction
  // counts exactly as before.
  uint64_t BInsts = 0, BLoads = 0, BStores = 0, BCond = 0, BTaken = 0,
           BCalls = 0, BRets = 0, BSys = 0, BUnal = 0;
  auto Commit = [&] {
    St.Instructions += BInsts;
    St.Loads += BLoads;
    St.Stores += BStores;
    St.CondBranches += BCond;
    St.TakenBranches += BTaken;
    St.Calls += BCalls;
    St.Returns += BRets;
    St.Syscalls += BSys;
    St.UnalignedAccesses += BUnal;
    BInsts = BLoads = BStores = BCond = BTaken = 0;
    BCalls = BRets = BSys = BUnal = 0;
  };

  const Inst *const Insts = Decoded.data();
  const uint8_t *const Ok = DecodeOk.data();
  const uint64_t TextWordsN = Decoded.size();

  while (Budget--) {
    if constexpr (!Fast) {
      if (St.Instructions >= NextHookAt)
        runPendingHooks();
    }

    // Fetch. PC below TextStart wraps to a huge offset, so one bound and
    // one alignment test cover all three historical bad-pc cases.
    uint64_t Off = PC - TextStart;
    uint64_t Idx = Off / 4;
    if ((Off & 3) || Idx >= TextWordsN) {
      Commit();
      return trap(TrapKind::BadPC, PC,
                  formatString("bad pc 0x%llx", (unsigned long long)PC));
    }
    if (!Ok[Idx]) {
      Commit();
      return trap(TrapKind::IllegalInstruction, PC,
                  formatString("illegal instruction at 0x%llx",
                               (unsigned long long)PC));
    }
    const Inst &I = Insts[Idx];

    if constexpr (!Fast) {
      if (ProfileOn && ProfNextLeader) {
        ++BlockCounts[PC];
        ProfNextLeader = false;
      }
    }

    TraceEvent Ev;
    if (Tracing) {
      Ev.PC = PC;
      Ev.I = I;
    }

    uint64_t NextPC = PC + 4;
    uint64_t B = I.IsLit ? I.Lit : Regs[I.Rb];
    int64_t SA = int64_t(Regs[I.Ra]);
    int64_t SB = int64_t(B);

    switch (I.Op) {
    case Opcode::Lda:
      setReg(I.Ra, Regs[I.Rb] + uint64_t(int64_t(I.Disp)));
      break;
    case Opcode::Ldah:
      setReg(I.Ra, Regs[I.Rb] + (uint64_t(int64_t(I.Disp)) << 16));
      break;

    case Opcode::Ldbu:
    case Opcode::Ldwu:
    case Opcode::Ldl:
    case Opcode::Ldq:
    case Opcode::Stb:
    case Opcode::Stw:
    case Opcode::Stl:
    case Opcode::Stq: {
      uint64_t Addr = Regs[I.Rb] + uint64_t(int64_t(I.Disp));
      unsigned Size = memAccessSize(I.Op);
      if (Addr & (Size - 1)) {
        if (Opts.StrictAlignment) {
          Commit();
          return trap(TrapKind::Unaligned, Addr,
                      formatString("unaligned %u-byte access at 0x%llx",
                                   Size, (unsigned long long)Addr));
        }
        ++BUnal;
      }
      if (Tracing)
        Ev.EffAddr = Addr;
      if (isLoad(I.Op)) {
        uint64_t V = 0;
        switch (I.Op) {
        case Opcode::Ldbu: V = Mem.load8(Addr); break;
        case Opcode::Ldwu: V = Mem.load16(Addr); break;
        case Opcode::Ldl: V = uint64_t(int64_t(int32_t(Mem.load32(Addr)))); break;
        case Opcode::Ldq: V = Mem.load64(Addr); break;
        default: break;
        }
        if (Mem.memFault().Faulted) {
          Commit();
          return memTrap();
        }
        ++BLoads;
        setReg(I.Ra, V);
      } else {
        uint64_t V = Regs[I.Ra];
        switch (I.Op) {
        case Opcode::Stb: Mem.store8(Addr, uint8_t(V)); break;
        case Opcode::Stw: Mem.store16(Addr, uint16_t(V)); break;
        case Opcode::Stl: Mem.store32(Addr, uint32_t(V)); break;
        case Opcode::Stq: Mem.store64(Addr, V); break;
        default: break;
        }
        if (Mem.memFault().Faulted) {
          Commit();
          return memTrap();
        }
        ++BStores;
      }
      break;
    }

    case Opcode::Br:
    case Opcode::Bsr:
      if (I.Op == Opcode::Bsr)
        ++BCalls;
      setReg(I.Ra, NextPC);
      NextPC = PC + 4 + uint64_t(int64_t(I.Disp)) * 4;
      if (Tracing)
        Ev.EffAddr = NextPC;
      break;

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble:
    case Opcode::Bgt:
    case Opcode::Bge:
    case Opcode::Blbc:
    case Opcode::Blbs: {
      bool Taken = false;
      switch (I.Op) {
      case Opcode::Beq: Taken = SA == 0; break;
      case Opcode::Bne: Taken = SA != 0; break;
      case Opcode::Blt: Taken = SA < 0; break;
      case Opcode::Ble: Taken = SA <= 0; break;
      case Opcode::Bgt: Taken = SA > 0; break;
      case Opcode::Bge: Taken = SA >= 0; break;
      case Opcode::Blbc: Taken = (Regs[I.Ra] & 1) == 0; break;
      case Opcode::Blbs: Taken = (Regs[I.Ra] & 1) == 1; break;
      default: break;
      }
      ++BCond;
      if (Taken) {
        ++BTaken;
        NextPC = PC + 4 + uint64_t(int64_t(I.Disp)) * 4;
      }
      if (Tracing)
        Ev.Taken = Taken;
      break;
    }

    case Opcode::Jmp:
    case Opcode::Jsr:
    case Opcode::Ret: {
      if (I.Op == Opcode::Jsr)
        ++BCalls;
      if (I.Op == Opcode::Ret)
        ++BRets;
      uint64_t Target = Regs[I.Rb] & ~uint64_t(3);
      setReg(I.Ra, NextPC);
      NextPC = Target;
      if (Tracing)
        Ev.EffAddr = Target;
      break;
    }

    case Opcode::Addl: setReg(I.Rc, uint64_t(int64_t(int32_t(SA + SB)))); break;
    case Opcode::Addq: setReg(I.Rc, uint64_t(SA + SB)); break;
    case Opcode::Subl: setReg(I.Rc, uint64_t(int64_t(int32_t(SA - SB)))); break;
    case Opcode::Subq: setReg(I.Rc, uint64_t(SA - SB)); break;
    case Opcode::Mull:
      setReg(I.Rc, uint64_t(int64_t(int32_t(uint32_t(SA) * uint32_t(SB)))));
      break;
    case Opcode::Mulq:
      setReg(I.Rc, uint64_t(SA) * uint64_t(SB));
      break;
    case Opcode::Umulh:
      setReg(I.Rc, uint64_t((unsigned __int128)(uint64_t)SA *
                            (unsigned __int128)(uint64_t)SB >> 64));
      break;
    case Opcode::Divq:
      if (SB == 0 && Opts.TrapOnDivideByZero) {
        Commit();
        return trap(TrapKind::Arithmetic, PC, "integer divide by zero");
      }
      setReg(I.Rc, SB == 0 ? 0
                           : (SA == INT64_MIN && SB == -1)
                                 ? uint64_t(INT64_MIN)
                                 : uint64_t(SA / SB));
      break;
    case Opcode::Remq:
      if (SB == 0 && Opts.TrapOnDivideByZero) {
        Commit();
        return trap(TrapKind::Arithmetic, PC, "integer divide by zero");
      }
      setReg(I.Rc, SB == 0 ? 0
                           : (SA == INT64_MIN && SB == -1)
                                 ? 0
                                 : uint64_t(SA % SB));
      break;
    case Opcode::Divqu:
      if (SB == 0 && Opts.TrapOnDivideByZero) {
        Commit();
        return trap(TrapKind::Arithmetic, PC, "integer divide by zero");
      }
      setReg(I.Rc, SB == 0 ? 0 : uint64_t(SA) / uint64_t(SB));
      break;
    case Opcode::Remqu:
      if (SB == 0 && Opts.TrapOnDivideByZero) {
        Commit();
        return trap(TrapKind::Arithmetic, PC, "integer divide by zero");
      }
      setReg(I.Rc, SB == 0 ? 0 : uint64_t(SA) % uint64_t(SB));
      break;

    case Opcode::And: setReg(I.Rc, Regs[I.Ra] & B); break;
    case Opcode::Bic: setReg(I.Rc, Regs[I.Ra] & ~B); break;
    case Opcode::Bis: setReg(I.Rc, Regs[I.Ra] | B); break;
    case Opcode::Ornot: setReg(I.Rc, Regs[I.Ra] | ~B); break;
    case Opcode::Xor: setReg(I.Rc, Regs[I.Ra] ^ B); break;
    case Opcode::Eqv: setReg(I.Rc, Regs[I.Ra] ^ ~B); break;
    case Opcode::Sll: setReg(I.Rc, Regs[I.Ra] << (B & 63)); break;
    case Opcode::Srl: setReg(I.Rc, Regs[I.Ra] >> (B & 63)); break;
    case Opcode::Sra: setReg(I.Rc, uint64_t(SA >> (B & 63))); break;

    case Opcode::Cmpeq: setReg(I.Rc, SA == SB); break;
    case Opcode::Cmplt: setReg(I.Rc, SA < SB); break;
    case Opcode::Cmple: setReg(I.Rc, SA <= SB); break;
    case Opcode::Cmpult: setReg(I.Rc, uint64_t(SA) < B); break;
    case Opcode::Cmpule: setReg(I.Rc, uint64_t(SA) <= B); break;

    case Opcode::Sextb: setReg(I.Rc, uint64_t(int64_t(int8_t(B)))); break;
    case Opcode::Sextw: setReg(I.Rc, uint64_t(int64_t(int16_t(B)))); break;

    case Opcode::Callsys: {
      ++BSys;
      uint64_t No = Regs[RegV0];
      if (Tracing)
        Ev.EffAddr = No;
      uint64_t A0 = Regs[RegA0], A1 = Regs[RegA1], A2 = Regs[RegA2];
      switch (No) {
      case SysExit: {
        ++BInsts;
        ++St.PerOpcode[size_t(I.Op)];
        Commit();
        if (Tracing)
          Trace(Ev);
        RunResult R;
        R.Status = RunStatus::Exited;
        R.ExitCode = int64_t(A0);
        return R;
      }
      case SysWrite: {
        // Validate the whole source range before allocating any host
        // memory: a guest-controlled huge A2 must trap, not OOM the host.
        if (!Mem.validRange(A1, A2, /*IsWrite=*/false)) {
          Commit();
          return memTrap();
        }
        std::vector<uint8_t> Buf(static_cast<size_t>(A2), 0);
        Mem.readBytes(A1, Buf.data(), Buf.size());
        if (Mem.memFault().Faulted) {
          Commit();
          return memTrap();
        }
        setReg(RegV0, uint64_t(Fs.write(int64_t(A0), Buf)));
        break;
      }
      case SysRead: {
        // Validate the destination before touching the VFS so a trapping
        // read never advances the file offset (recovery/replay depend on
        // the fd state being untouched by a faulting instruction).
        if (!Mem.validRange(A1, A2, /*IsWrite=*/true)) {
          Commit();
          return memTrap();
        }
        std::vector<uint8_t> Buf;
        int64_t N = Fs.read(int64_t(A0), A2, Buf);
        if (N > 0)
          Mem.writeBytes(A1, Buf.data(), Buf.size());
        if (Mem.memFault().Faulted) {
          Commit();
          return memTrap();
        }
        setReg(RegV0, uint64_t(N));
        break;
      }
      case SysOpen: {
        std::string Path;
        bool Terminated = false;
        for (uint64_t P = A0; Path.size() < 4096; ++P) {
          char C = char(Mem.load8(P));
          if (Mem.memFault().Faulted) {
            Commit();
            return memTrap();
          }
          if (!C) {
            Terminated = true;
            break;
          }
          Path += C;
        }
        if (!Terminated) {
          // Never act on a silently truncated name.
          Commit();
          return trap(TrapKind::UnmappedAccess, A0,
                      formatString("open: path at 0x%llx not NUL-terminated "
                                   "within 4096 bytes",
                                   (unsigned long long)A0));
        }
        setReg(RegV0, uint64_t(Fs.open(Path, A1)));
        break;
      }
      case SysClose:
        setReg(RegV0, uint64_t(Fs.close(int64_t(A0))));
        break;
      default:
        Commit();
        return trap(TrapKind::BadSyscall, No,
                    formatString("unknown syscall %llu",
                                 (unsigned long long)No));
      }
      break;
    }

    case Opcode::Halt: {
      ++BInsts;
      ++St.PerOpcode[size_t(I.Op)];
      Commit();
      RunResult R;
      R.Status = RunStatus::Halted;
      R.ExitCode = int64_t(Regs[RegV0]);
      return R;
    }

    case Opcode::NumOpcodes:
      Commit();
      return trap(TrapKind::IllegalInstruction, PC, "corrupt decode");
    }

    // Retirement: only instructions that complete without trapping count.
    ++BInsts;
    ++St.PerOpcode[size_t(I.Op)];
    if constexpr (!Fast) {
      // Hooks and tracers observe exact per-instruction stats; flush the
      // batched counters at every retirement on the slow path.
      Commit();
      if (Tracing)
        Trace(Ev);
      if (ProfileOn && isControlTransfer(I.Op))
        ProfNextLeader = true; // target and fall-through both lead blocks
    }
    PC = NextPC;
    if constexpr (BlockStep) {
      // DBT dispatcher mode: hand control back at the basic-block
      // boundary so hot targets can be translated. Reported as
      // FuelExhausted with SteppedBlockEnd distinguishing it from the
      // genuine case.
      if (isControlTransfer(I.Op)) {
        Commit();
        SteppedBlockEnd = true;
        RunResult R;
        R.Status = RunStatus::FuelExhausted;
        R.FaultPC = PC;
        return R;
      }
    }
  }

  Commit();
  RunResult R;
  R.Status = RunStatus::FuelExhausted;
  R.FaultPC = PC;
  R.FaultMessage = "instruction budget exhausted";
  return R;
}

void Machine::corruptTextWord(size_t Idx, uint32_t Mask) {
  if (Idx >= TextWords.size())
    return;
  TextWords[Idx] ^= Mask;
  DecodeOk[Idx] = decode(TextWords[Idx], Decoded[Idx]) ? 1 : 0;
  // Keep the memory image coherent with the decode stream, and drop any
  // translation that still covers the stale word — page-ranged, so one
  // corrupted word no longer evicts unrelated entries (and the DBT tier,
  // listening on the same event, drops exactly the blocks it intersects).
  uint64_t Addr = TextStart + uint64_t(Idx) * 4;
  Mem.poke32(Addr, TextWords[Idx]);
  Mem.invalidateTranslation(Addr, Addr + 4);
}

RunResult sim::runExecutable(const Executable &Exe, Machine *Out) {
  Machine M(Exe);
  RunResult R = M.run();
  if (Out)
    *Out = std::move(M);
  return R;
}
