//===- sim/Inject.cpp - Deterministic fault injection ---------------------===//

#include "sim/Inject.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace atom;
using namespace atom::sim;

namespace {

/// Strict unsigned parse (the cli parseUnsignedArg contract, but
/// returning failure instead of exiting): the whole string must be one
/// unsigned integer — no trailing garbage ("4x"), no sign, no leading
/// whitespace, no overflow.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S[0] == '-' || S[0] == '+' ||
      std::isspace(static_cast<unsigned char>(S[0])))
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 0);
  if (End == S.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

} // namespace

const char *sim::injectKindName(InjectSpec::Kind K) {
  switch (K) {
  case InjectSpec::Kind::RegBit: return "regbit";
  case InjectSpec::Kind::MemBit: return "membit";
  case InjectSpec::Kind::Decode: return "decode";
  case InjectSpec::Kind::Io: return "io";
  }
  return "?";
}

bool sim::parseInjectSpec(const std::string &Text, InjectSpec &Spec,
                          std::string &Err) {
  size_t At = Text.find('@');
  if (At == std::string::npos) {
    Err = "inject spec '" + Text + "' has no '@' (want kind@icount[,seed])";
    return false;
  }
  std::string Kind = Text.substr(0, At);
  if (Kind == "regbit")
    Spec.K = InjectSpec::Kind::RegBit;
  else if (Kind == "membit")
    Spec.K = InjectSpec::Kind::MemBit;
  else if (Kind == "decode")
    Spec.K = InjectSpec::Kind::Decode;
  else if (Kind == "io")
    Spec.K = InjectSpec::Kind::Io;
  else {
    Err = "unknown inject kind '" + Kind +
          "' (want regbit|membit|decode|io)";
    return false;
  }

  std::string Rest = Text.substr(At + 1);
  std::string Count = Rest;
  Spec.Seed = 1;
  size_t Comma = Rest.find(',');
  if (Comma != std::string::npos) {
    Count = Rest.substr(0, Comma);
    std::string SeedStr = Rest.substr(Comma + 1);
    if (!parseU64(SeedStr, Spec.Seed)) {
      Err = "bad inject seed '" + SeedStr +
            "' (want an unsigned integer, no trailing characters)";
      return false;
    }
  }
  if (!parseU64(Count, Spec.ICount)) {
    Err = "bad inject instruction count '" + Count +
          "' (want an unsigned integer, no trailing characters)";
    return false;
  }
  return true;
}

namespace {

/// xorshift64: tiny, deterministic, and plenty for picking corruption
/// targets. Never returns 0 for a nonzero seed.
uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

} // namespace

void sim::applyInjection(const InjectSpec &Spec, Machine &M) {
  uint64_t S = Spec.Seed ? Spec.Seed : 1;
  switch (Spec.K) {
  case InjectSpec::Kind::RegBit: {
    // Any register but the hardwired zero.
    unsigned R = unsigned(nextRand(S) % (isa::NumRegs - 1));
    unsigned Bit = unsigned(nextRand(S) % 64);
    M.setReg(R, M.reg(R) ^ (uint64_t(1) << Bit));
    break;
  }
  case InjectSpec::Kind::MemBit: {
    uint64_t Len = M.dataEnd() - M.dataStart();
    if (!Len)
      return;
    uint64_t Addr = M.dataStart() + nextRand(S) % Len;
    unsigned Bit = unsigned(nextRand(S) % 8);
    M.memory().store8(Addr, M.memory().load8(Addr) ^ uint8_t(1u << Bit));
    break;
  }
  case InjectSpec::Kind::Decode: {
    if (!M.textWordCount())
      return;
    size_t Idx = size_t(nextRand(S) % M.textWordCount());
    uint32_t Mask = uint32_t(nextRand(S));
    M.corruptTextWord(Idx, Mask ? Mask : 1);
    break;
  }
  case InjectSpec::Kind::Io:
    M.vfs().injectErrors(1);
    break;
  }
}

void sim::armInjections(const std::vector<InjectSpec> &Specs, Machine &M) {
  for (const InjectSpec &Spec : Specs)
    M.addPreInstHook(Spec.ICount,
                     [Spec](Machine &Target) { applyInjection(Spec, Target); });
}
