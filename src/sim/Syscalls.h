//===- sim/Syscalls.h - System call layer and in-memory VFS -----*- C++ -*-===//
//
// The simulated OS interface: exit/read/write/open/close over an in-memory
// file system. File descriptors 1 and 2 capture stdout/stderr text so tests
// and benchmarks can inspect program and tool output.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SIM_SYSCALLS_H
#define ATOM_SIM_SYSCALLS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace atom {
namespace sim {

/// System call numbers (passed in v0).
enum Sysno : uint64_t {
  SysExit = 1,
  SysRead = 2,
  SysWrite = 3,
  SysOpen = 4,
  SysClose = 5,
};

/// Open flags for SysOpen (a1).
enum OpenFlags : uint64_t {
  OpenRead = 0,
  OpenWriteCreate = 1, ///< Create or truncate for writing.
  OpenAppend = 2,      ///< Create if absent; position at the end.
};

/// In-memory file system plus descriptor table.
class Vfs {
public:
  Vfs();

  /// Returns a new fd (>= 3) or -1.
  int64_t open(const std::string &Path, uint64_t Flags);
  int64_t close(int64_t Fd);
  /// Writes \p Data; fd 1/2 append to the stdout/stderr buffers.
  int64_t write(int64_t Fd, const std::vector<uint8_t> &Data);
  /// Reads up to \p N bytes into \p Out.
  int64_t read(int64_t Fd, uint64_t N, std::vector<uint8_t> &Out);

  /// Current file position of \p Fd, or -1 if it is not open. The precise
  /// syscall-fault contract (docs/FAULTS.md) says a trapping read must not
  /// advance the offset; tests observe that through this.
  int64_t tell(int64_t Fd) const {
    if (Fd < 0 || Fd >= int64_t(Fds.size()) || !Fds[size_t(Fd)].Open)
      return -1;
    return int64_t(Fds[size_t(Fd)].Pos);
  }

  /// Pre-populates a file (test inputs).
  void addFile(const std::string &Path, const std::string &Contents);
  /// Contents of \p Path as a string; empty if absent.
  std::string fileContents(const std::string &Path) const;
  bool fileExists(const std::string &Path) const {
    return Files.count(Path) != 0;
  }

  const std::string &stdoutText() const { return StdoutBuf; }
  const std::string &stderrText() const { return StderrBuf; }

  /// Makes the next \p N open/close/read/write calls fail with -1 (fault
  /// injection: exercises the program's error paths deterministically).
  void injectErrors(uint64_t N) { ErrInject += N; }

private:
  /// Consumes one injected error; returns true if this call should fail.
  bool takeInjectedError() {
    if (!ErrInject)
      return false;
    --ErrInject;
    return true;
  }

  uint64_t ErrInject = 0;
  struct OpenFile {
    std::string Path;
    uint64_t Pos = 0;
    bool Writable = false;
    bool Open = false;
  };

  std::map<std::string, std::vector<uint8_t>> Files;
  std::vector<OpenFile> Fds;
  std::string StdoutBuf;
  std::string StderrBuf;
};

} // namespace sim
} // namespace atom

#endif // ATOM_SIM_SYSCALLS_H
