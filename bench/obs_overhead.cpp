//===- bench/obs_overhead.cpp - Observability overhead (tracing on/off) ---===//
//
// Prices the observability layer around the instrumentation pipeline
// (docs/OBSERVABILITY.md):
//
//   disabled   registry off — the shipping default for library embedders.
//              The zero-allocation contract is ENFORCED here, not assumed:
//              any registry allocation while disabled fails the benchmark.
//   enabled    registry on — counters, histograms, span trees.
//   traced     registry on + a per-run TraceContext, so every span also
//              lands in the lock-free flight-recorder ring.
//
// Plus a microbenchmark of FlightRecorder::record itself (ns/record), the
// figure that bounds what "always-on" costs a hot request path.
//
// Emits BENCH_obs_overhead.json; CI runs `--smoke` and keeps the document
// as a build artifact.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Trace.h"

using namespace atom;
using namespace atom::bench;

namespace {

/// Seconds per full instrument run of \p T over \p App.
double runPipeline(const obj::Executable &App, const Tool &T, int Iters,
                   bool Traced) {
  Stopwatch W;
  for (int I = 0; I < Iters; ++I) {
    if (Traced) {
      obs::TraceScope Scope(obs::TraceContext::mint());
      instrumentOrExit(App, T);
    } else {
      instrumentOrExit(App, T);
    }
  }
  return W.seconds() / Iters;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv, "BENCH_obs_overhead.json");
  const int Iters = Args.Smoke ? 3 : 12;

  const workloads::Workload *W = workloads::findWorkload("qsort");
  if (!W) {
    std::fprintf(stderr, "missing workload qsort\n");
    return 1;
  }
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(W->Source, App, Diags)) {
    std::fprintf(stderr, "qsort failed to build:\n%s", Diags.str().c_str());
    return 1;
  }
  const Tool *T = tools::findTool("prof");
  if (!T) {
    std::fprintf(stderr, "missing tool prof\n");
    return 1;
  }

  obs::Registry &Reg = obs::Registry::global();

  // Mode 1: disabled. One warm-up run first so lazily-initialized state
  // (tool source cache and the like) is not billed to this mode.
  Reg.setEnabled(false);
  Reg.reset();
  instrumentOrExit(App, *T);
  Reg.reset();
  double Disabled = runPipeline(App, *T, Iters, /*Traced=*/false);
  uint64_t Allocs = Reg.allocations();
  bool ZeroAlloc = Allocs == 0 && Reg.counters().empty() &&
                   Reg.histograms().empty() && !Reg.hasSpans();
  if (!ZeroAlloc) {
    std::fprintf(stderr,
                 "FAIL: disabled registry did work (%llu allocations) — "
                 "the zero-alloc-while-disabled contract is broken\n",
                 (unsigned long long)Allocs);
    return 1;
  }

  // Mode 2: metrics enabled, requests untraced.
  Reg.setEnabled(true);
  Reg.reset();
  double Enabled = runPipeline(App, *T, Iters, /*Traced=*/false);

  // Mode 3: metrics enabled + per-run trace context: spans now also hit
  // the flight-recorder ring and histograms pick up exemplars.
  Reg.reset();
  double Traced = runPipeline(App, *T, Iters, /*Traced=*/true);
  Reg.reset();
  Reg.setEnabled(false);

  // The ring itself: ns per record, single-threaded.
  const uint64_t RecN = Args.Smoke ? 200000 : 2000000;
  obs::TraceContext Ctx = obs::TraceContext::mint();
  auto FR = std::make_unique<obs::FlightRecorder>();
  Stopwatch RecW;
  for (uint64_t I = 0; I < RecN; ++I)
    FR->recordSpan(Ctx, "bench", int64_t(I), 1);
  double NsPerRec = RecW.seconds() * 1e9 / double(RecN);

  double EnabledPct = Disabled > 0 ? (Enabled / Disabled - 1) * 100 : 0;
  double TracedPct = Disabled > 0 ? (Traced / Disabled - 1) * 100 : 0;
  std::printf("%-22s %10.4f s/run\n", "registry disabled", Disabled);
  std::printf("%-22s %10.4f s/run (%+.1f%%)\n", "registry enabled",
              Enabled, EnabledPct);
  std::printf("%-22s %10.4f s/run (%+.1f%%)\n", "enabled + traced",
              Traced, TracedPct);
  std::printf("%-22s %10.1f ns/record\n", "flight recorder", NsPerRec);
  std::printf("zero-alloc while disabled: ok\n");

  obs::JsonWriter J;
  J.beginObject();
  J.key("bench");
  J.value("obs_overhead");
  J.key("smoke");
  J.value(Args.Smoke);
  J.key("iters");
  J.value(uint64_t(Iters));
  J.key("disabled_s");
  J.value(Disabled);
  J.key("enabled_s");
  J.value(Enabled);
  J.key("traced_s");
  J.value(Traced);
  J.key("overhead_enabled_pct");
  J.value(EnabledPct);
  J.key("overhead_traced_pct");
  J.value(TracedPct);
  J.key("flightrec_ns_per_record");
  J.value(NsPerRec);
  J.key("zero_alloc_disabled");
  J.value(true);
  J.endObject();
  writeJsonDoc(Args.JsonPath, J.take() + "\n");
  std::printf("results written to %s\n", Args.JsonPath.c_str());
  return 0;
}
