//===- bench/ablation_delayed_saves.cpp - Delayed saves (E6) --------------===//
//
// Paper §4: "if an analysis routine contains procedure calls to other
// analysis routines, we save only the registers directly used in this
// analysis routine and delay the saves of other registers to procedures
// that may be called. ... This helps analysis routines that normally
// return if their argument is valid but otherwise raise an error. Raising
// an error typically involves printing an error message and touching a lot
// more registers. For such routines, the common case of a valid argument
// has low overhead as few registers are saved."
//
// Reproduction: a validator whose fast path (hand-written, two scratch
// registers) is executed at every memory reference, and whose error path
// (compiled mini-C touching many scratch registers) never runs. With
// aggregate summary saves, every event pays for the error path's
// registers; with distributed (delayed) saves it pays only for the fast
// path's two.
//
// Register renaming is disabled in both configurations: renaming compacts
// all routines onto the same few scratch registers, which (correctly)
// erases most of the effect being measured — the run with renaming is
// printed as a third row to show exactly that interaction.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

namespace {

/// Cold error path in mini-C: deep expressions use many scratch
/// registers, and it reports through puts().
const char *ValidatorMc = R"(
long errs;
long checked;
long sink;

void ValidateError(long addr) {
  long a = addr + 1;
  long b = a * 3;
  long c = b - addr;
  long d = c ^ a;
  long e = d + b;
  long f = e * c;
  long g = f - d;
  long h = g + e;
  sink = ((a + b) * (c + d) - (e + f) * (g + h)) *
         ((a ^ b) + (c ^ d) - (e & f) + (g | h)) +
         ((a - c) * (b - d) + (e - g) * (f - h));
  errs = errs + 1;
  puts("bad address");
}

void Report() {
  long f = fopen("validate.out", "w");
  fprintf(f, "checked %ld errors %ld\n", checked, errs);
  fclose(f);
}
)";

/// Hot validator in assembly: counter bump + sign check, two scratch
/// registers; the error path is a call to the mini-C routine.
const char *ValidatorAsm = R"(
        .text
        .ent    Validate
        .globl  Validate
Validate:
        laddr   t0, checked
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        blt     a0, Validate$err
        ret
Validate$err:
        lda     sp, -16(sp)
        stq     ra, 0(sp)
        bsr     ra, ValidateError
        ldq     ra, 0(sp)
        lda     sp, 16(sp)
        ret
        .end    Validate
)";

Tool validatorTool() {
  Tool T;
  T.Name = "validate";
  T.Description = "address validator with a cold error path";
  T.AnalysisSources = {ValidatorMc};
  T.AnalysisAsmSources = {ValidatorAsm};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Validate(VALUE)");
    C.addCallProto("Report()");
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
        for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
          if (C.isInstType(I, InstType::MemRef))
            C.addCallInst(I, InstPoint::InstBefore, "Validate",
                          {Arg::value(RuntimeValue::EffAddrValue)});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };
  return T;
}

} // namespace

int main() {
  std::vector<obj::Executable> Suite = buildSuite();
  std::vector<uint64_t> BaseInsts;
  for (const obj::Executable &App : Suite)
    BaseInsts.push_back(runInsts(App));

  Tool T = validatorTool();

  struct {
    const char *Name;
    AtomOptions::SaveStrategy S;
    bool Rename;
  } Configs[] = {
      {"aggregate, no renaming", AtomOptions::SaveStrategy::WrapperSummary,
       false},
      {"distributed, no renaming", AtomOptions::SaveStrategy::Distributed,
       false},
      {"aggregate + renaming", AtomOptions::SaveStrategy::WrapperSummary,
       true},
  };

  std::printf("Ablation E6: delayed saves on a validator with a cold error "
              "path\n");
  std::printf("(all addresses valid at run time; the error path never "
              "runs)\n");
  std::printf("%-26s | %9s | %12s\n", "configuration", "ratio",
              "save slots");
  std::printf("---------------------------+-----------+-------------\n");
  for (const auto &Cfg : Configs) {
    AtomOptions Opts;
    Opts.Strategy = Cfg.S;
    Opts.RenameAnalysisRegs = Cfg.Rename;
    std::vector<double> Ratios;
    uint64_t Slots = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      InstrumentedProgram Out = instrumentOrExit(Suite[I], T, Opts);
      Slots += Out.Stats.SaveSlots;
      Ratios.push_back(double(runInsts(Out.Exe)) / double(BaseInsts[I]));
    }
    std::printf("%-26s | %8.2fx | %12llu\n", Cfg.Name, geomean(Ratios),
                (unsigned long long)Slots);
  }
  return 0;
}
