//===- bench/arg_setup_cost.cpp - Argument synthesis cost model (E5) ------===//
//
// Paper §4: "The number of instructions needed to set up an argument
// depends on the type of the argument. For example, a 16-bit integer
// constant can be built in 1 instruction, a 32-bit constant in two
// instructions, ... Passing contents of a register takes 1 instruction."
//
// Part 1 prints the constant-synthesis cost table directly.
// Part 2 measures whole call sequences: one instrumentation point with N
// arguments of each kind, reporting the inserted-instruction count (site
// sequence including stack adjustment, saves, argument setup and the call).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "isa/ConstantSynth.h"

using namespace atom;
using namespace atom::bench;

namespace {

/// Instruments a single point in a fixed application with the given
/// arguments and returns the number of inserted instructions.
unsigned measureSeq(const std::vector<Arg> &Args, const char *Proto) {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication("int main() { return 0; }", App, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  Tool T;
  T.Name = "argcost";
  // One analysis procedure that touches nothing (pure asm, empty body) so
  // the measured cost is the call sequence itself.
  T.AnalysisAsmSources = {R"(
        .text
        .ent    Sink
        .globl  Sink
Sink:
        ret
        .end    Sink
)"};
  T.Instrument = [&](InstrumentationContext &C) {
    C.addCallProto(Proto);
    if (Proc *Main = C.findProc("main")) {
      Block *B = C.getFirstBlock(Main);
      C.addCallBlock(B, BlockPoint::BlockBefore, "Sink", Args);
    }
  };
  InstrumentedProgram Out = instrumentOrExit(App, T);
  // Verify the instrumented program still runs.
  runInsts(Out.Exe);
  return Out.Stats.InsertedInsts;
}

} // namespace

int main() {
  std::printf("E5 part 1: constant-synthesis cost (paper: 16-bit in 1, "
              "32-bit in 2)\n");
  struct {
    const char *Desc;
    int64_t V;
  } Consts[] = {
      {"0", 0},
      {"16-bit (1000)", 1000},
      {"16-bit (-32768)", -32768},
      {"32-bit (0x123456)", 0x123456},
      {"32-bit (0x12345678)", 0x12345678},
      {"program counter (0x2000100)", 0x2000100},
      {"48-bit (0x123456789A)", 0x123456789ALL},
      {"64-bit (0xDEADBEEFCAFEF00D)", int64_t(0xDEADBEEFCAFEF00DULL)},
  };
  std::printf("%-28s | %s\n", "constant", "instructions");
  std::printf("-----------------------------+-------------\n");
  for (const auto &C : Consts)
    std::printf("%-28s | %u\n", C.Desc, isa::constantCost(C.V));

  std::printf("\nE5 part 2: inserted instructions for one call with the "
              "given arguments\n");
  std::printf("(site sequence: sp adjust + ra/arg-register saves + setup + "
              "call + restores)\n");
  std::printf("%-34s | %s\n", "arguments", "inserted insts");
  std::printf("-----------------------------------+---------------\n");

  struct {
    const char *Desc;
    const char *Proto;
    std::vector<Arg> Args;
  } Cases[] = {
      {"()", "Sink()", {}},
      {"(small const)", "Sink(long)", {Arg::imm(7)}},
      {"(32-bit const)", "Sink(long)", {Arg::imm(0x12345678)}},
      {"(REGV t0)", "Sink(REGV)", {Arg::regv(isa::RegT0)}},
      {"(REGV sp)", "Sink(REGV)", {Arg::regv(isa::RegSP)}},
      {"(const, const)", "Sink(long, long)", {Arg::imm(1), Arg::imm(2)}},
      {"(const x6)", "Sink(long, long, long, long, long, long)",
       {Arg::imm(1), Arg::imm(2), Arg::imm(3), Arg::imm(4), Arg::imm(5),
        Arg::imm(6)}},
      {"(const x8, 2 on the stack)",
       "Sink(long, long, long, long, long, long, long, long)",
       {Arg::imm(1), Arg::imm(2), Arg::imm(3), Arg::imm(4), Arg::imm(5),
        Arg::imm(6), Arg::imm(7), Arg::imm(8)}},
  };
  for (const auto &C : Cases)
    std::printf("%-34s | %u\n", C.Desc, measureSeq(C.Args, C.Proto));

  return 0;
}
