//===- bench/fig6_exec_overhead.cpp - Paper Figure 6 ----------------------===//
//
// "Execution time of instrumented SPEC92 programs as compared to
// uninstrumented SPEC92 programs": for each tool, the ratio of the
// instrumented program's execution time to the uninstrumented one
// (geometric mean over the 20 workloads), next to the instrumentation
// points and argument counts, and the paper's reported ratio for reference.
//
// Execution time is simulated instruction count — both versions run on the
// same simulator, so the ratio is the meaningful quantity (DESIGN.md).
// Shape to check (EXPERIMENTS.md): cache is by far the most expensive;
// branch/dyninst/unalign cluster around 3x; gprof/prof between 2x and 3x;
// pipe below those; inline/io/malloc/syscall near 1.0x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

namespace {

struct ToolRow {
  const char *Name;
  const char *Points;
  int Args;
  double PaperRatio;
};

/// The paper's Figure 6 rows (instrumentation points, number of arguments,
/// reported slowdown).
const ToolRow PaperRows[] = {
    {"branch", "each conditional branch", 3, 3.03},
    {"cache", "each memory reference", 1, 11.84},
    {"dyninst", "each basic block", 3, 2.91},
    {"gprof", "each procedure/each basic block", 2, 2.70},
    {"inline", "each call site", 1, 1.03},
    {"io", "before/after write procedure", 4, 1.01},
    {"malloc", "before/after malloc procedure", 1, 1.02},
    {"pipe", "each basic block", 2, 1.80},
    {"prof", "each procedure/each basic block", 2, 2.33},
    {"syscall", "before/after each system call", 2, 1.01},
    {"unalign", "each memory reference", 3, 2.93},
};

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = BenchArgs::parse(argc, argv, "BENCH_fig6.json");
  std::vector<obj::Executable> Suite =
      buildSuite(Args.Smoke ? 4 : 0, Args.Jobs);

  std::vector<uint64_t> BaseInsts;
  for (const obj::Executable &App : Suite)
    BaseInsts.push_back(runInsts(App));

  std::printf("Figure 6: execution time of instrumented programs vs "
              "uninstrumented (geomean of %zu workloads)\n", Suite.size());
  std::printf("%-9s | %-32s | %4s | %9s | %9s | %7s | %7s\n", "tool",
              "instrumentation points", "args", "ratio", "paper", "min",
              "max");
  std::printf("----------+----------------------------------+------+-------"
              "----+-----------+---------+--------\n");

  obs::JsonWriter J;
  J.beginObject();
  J.key("figure");
  J.value("fig6");
  J.key("workloads");
  J.value(uint64_t(Suite.size()));
  J.key("smoke");
  J.value(Args.Smoke);
  J.key("tools");
  J.beginArray();

  auto measure = [&](const Tool &T, const AtomOptions &Opts, double &Ratio,
                     double &Min, double &Max) {
    std::vector<double> Ratios;
    Min = 1e30;
    Max = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      InstrumentedProgram Out = instrumentOrExit(Suite[I], T, Opts);
      uint64_t Insts = runInsts(Out.Exe);
      double R = double(Insts) / double(BaseInsts[I]);
      Ratios.push_back(R);
      Min = std::min(Min, R);
      Max = std::max(Max, R);
    }
    Ratio = geomean(Ratios);
  };

  auto emitRow = [&](const std::string &Name, const AtomOptions &Opts,
                     double Ratio, double PaperRatio, double Min,
                     double Max) {
    J.beginObject();
    J.key("tool");
    J.value(Name);
    J.key("ratio");
    J.value(Ratio);
    if (PaperRatio > 0) {
      J.key("paper_ratio");
      J.value(PaperRatio);
    }
    J.key("min");
    J.value(Min);
    J.key("max");
    J.value(Max);
    writeConfigStamp(J, Opts);
    J.endObject();
  };

  // Each tool at the default configuration (the figure itself, rows keyed
  // by tool name) and at --opt=O2 (rows keyed "<tool>@O2") — the
  // optimizing probe codegen sweep of EXPERIMENTS.md E7.
  for (const ToolRow &Row : PaperRows) {
    const Tool *T = tools::findTool(Row.Name);
    if (!T) {
      std::fprintf(stderr, "missing tool %s\n", Row.Name);
      return 1;
    }
    double Ratio, Min, Max;
    measure(*T, AtomOptions(), Ratio, Min, Max);
    std::printf("%-9s | %-32s | %4d | %8.2fx | %8.2fx | %6.2fx | %6.2fx\n",
                Row.Name, Row.Points, Row.Args, Ratio, Row.PaperRatio, Min,
                Max);
    emitRow(Row.Name, AtomOptions(), Ratio, Row.PaperRatio, Min, Max);

    AtomOptions O2;
    O2.Opt = AtomOptions::OptPreset::O2;
    double R2, Min2, Max2;
    measure(*T, O2, R2, Min2, Max2);
    std::printf("%-9s | %-32s | %4d | %8.2fx | %9s | %6.2fx | %6.2fx\n",
                (std::string(Row.Name) + "@O2").c_str(), "", Row.Args, R2,
                "--", Min2, Max2);
    emitRow(std::string(Row.Name) + "@O2", O2, R2, 0, Min2, Max2);
  }

  // Not a Figure 6 row: the ATF trace recorder (docs/TRACING.md), measured
  // with the same protocol. Recorded with a partitioned analysis heap, as
  // axp-trace record --tool runs it; the paper reports no number for a
  // full-trace tool.
  {
    const Tool *T = tools::findTool("trace");
    if (!T) {
      std::fprintf(stderr, "missing tool trace\n");
      return 1;
    }
    AtomOptions Opts;
    Opts.AnalysisHeapOffset = 16 * 1024 * 1024;
    double Ratio, Min, Max;
    measure(*T, Opts, Ratio, Min, Max);
    std::printf("%-9s | %-32s | %4d | %8.2fx | %9s | %6.2fx | %6.2fx\n",
                "trace", "each block + mem/branch/syscall", 2, Ratio, "--",
                Min, Max);
    emitRow("trace", Opts, Ratio, 0, Min, Max);

    AtomOptions O2 = Opts;
    O2.Opt = AtomOptions::OptPreset::O2;
    double R2, Min2, Max2;
    measure(*T, O2, R2, Min2, Max2);
    std::printf("%-9s | %-32s | %4d | %8.2fx | %9s | %6.2fx | %6.2fx\n",
                "trace@O2", "", 2, R2, "--", Min2, Max2);
    emitRow("trace@O2", O2, R2, 0, Min2, Max2);
  }

  J.endArray();
  J.endObject();
  writeJsonDoc(Args.JsonPath, J.take() + "\n");
  std::printf("results written to %s\n", Args.JsonPath.c_str());
  return 0;
}
