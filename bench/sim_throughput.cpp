//===- bench/sim_throughput.cpp - Raw interpreter throughput --------------===//
//
// Instructions/second of the bare simulator — no tool, no trace sink, no
// hooks. Each workload runs three times per configuration:
//
//   dbt    the dynamic-binary-translation tier (docs/DBT.md): hot blocks
//          run as host machine code out of the code cache.
//   fast   the fused interpreter loop (translation cache, span copies,
//          batched stats) with DBT disabled — the pre-DBT fast path.
//   slow   the fully checked per-instruction loop (EnableFastPath = false),
//          i.e. the historical interpreter both faster tiers must match.
//
// The headline numbers are geomean Minst/s for all three configurations,
// the fast/slow speedup, and the dbt/fast speedup (the ROADMAP item-1
// target: >= 5x). Emits BENCH_sim_throughput.json atomically; bench-smoke
// compares it (advisorily) against the committed baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

namespace {

struct Measure {
  bool Ok = false;
  double Seconds = 0;
  uint64_t Insts = 0;
  double mips() const { return Seconds > 0 ? double(Insts) / Seconds / 1e6 : 0; }
};

/// Repeats fresh runs of \p Exe until \p MinSeconds of simulated execution
/// has been timed (at least one run), so short workloads still produce a
/// stable rate. A non-clean run reports failure instead of exiting so the
/// caller can abandon the document cleanly (it is written atomically at
/// the end; a failed bench leaves no partial JSON behind).
Measure measure(const obj::Executable &Exe, const sim::MachineOptions &Opts,
                double MinSeconds) {
  Measure M;
  do {
    sim::Machine Mach(Exe, Opts);
    Stopwatch T;
    sim::RunResult R = Mach.run();
    M.Seconds += T.seconds();
    if (R.Status != sim::RunStatus::Exited) {
      std::fprintf(stderr, "workload did not exit cleanly: %s\n",
                   R.FaultMessage.c_str());
      return M;
    }
    M.Insts += Mach.stats().Instructions;
  } while (M.Seconds < MinSeconds);
  M.Ok = true;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv, "BENCH_sim_throughput.json");
  // Smoke keeps CI fast; full runs time each workload long enough for a
  // stable Minst/s figure.
  const double MinSeconds = Args.Smoke ? 0.1 : 0.5;
  const char *Names[] = {"crc", "qsort", "matmul", "sieve", "bubble", "rle"};

  sim::MachineOptions DbtOpts; // defaults: fast path + DBT
  sim::MachineOptions FastOpts;
  FastOpts.EnableDbt = false;
  sim::MachineOptions SlowOpts;
  SlowOpts.EnableFastPath = false;
  SlowOpts.EnableDbt = false;

  obs::JsonWriter J;
  J.beginObject();
  J.key("bench");
  J.value("sim_throughput");
  J.key("smoke");
  J.value(Args.Smoke);
  J.key("workloads");
  J.beginArray();

  std::printf("%-8s %12s %12s %12s %8s %8s\n", "workload", "dbt Mi/s",
              "fast Mi/s", "slow Mi/s", "f/s", "dbt/f");
  std::vector<double> DbtMips, FastMips, SlowMips, Speedups, DbtSpeedups;
  for (const char *Name : Names) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "missing workload %s\n", Name);
      return 1;
    }
    DiagEngine Diags;
    obj::Executable Exe;
    if (!buildApplication(W->Source, Exe, Diags)) {
      std::fprintf(stderr, "%s failed to build:\n%s", Name,
                   Diags.str().c_str());
      return 1;
    }
    Measure Dbt = measure(Exe, DbtOpts, MinSeconds);
    Measure Fast = measure(Exe, FastOpts, MinSeconds);
    Measure Slow = measure(Exe, SlowOpts, MinSeconds);
    if (!Dbt.Ok || !Fast.Ok || !Slow.Ok)
      return 1; // nothing written: the JSON lands atomically at the end
    double Speedup = Slow.mips() > 0 ? Fast.mips() / Slow.mips() : 0;
    double DbtSpeedup = Fast.mips() > 0 ? Dbt.mips() / Fast.mips() : 0;
    DbtMips.push_back(Dbt.mips());
    FastMips.push_back(Fast.mips());
    SlowMips.push_back(Slow.mips());
    Speedups.push_back(Speedup);
    DbtSpeedups.push_back(DbtSpeedup);

    std::printf("%-8s %12.2f %12.2f %12.2f %7.2fx %7.2fx\n", Name, Dbt.mips(),
                Fast.mips(), Slow.mips(), Speedup, DbtSpeedup);

    J.beginObject();
    J.key("name");
    J.value(Name);
    J.key("insts");
    J.value(uint64_t(Fast.Insts));
    J.key("dbt");
    J.beginObject();
    J.key("seconds");
    J.value(Dbt.Seconds);
    J.key("mips");
    J.value(Dbt.mips());
    J.endObject();
    J.key("fast");
    J.beginObject();
    J.key("seconds");
    J.value(Fast.Seconds);
    J.key("mips");
    J.value(Fast.mips());
    J.endObject();
    J.key("slow");
    J.beginObject();
    J.key("seconds");
    J.value(Slow.Seconds);
    J.key("mips");
    J.value(Slow.mips());
    J.endObject();
    J.key("speedup");
    J.value(Speedup);
    J.key("dbt_speedup");
    J.value(DbtSpeedup);
    J.endObject();
  }
  J.endArray();

  double GDbt = geomean(DbtMips), GFast = geomean(FastMips),
         GSlow = geomean(SlowMips), GSpeed = geomean(Speedups),
         GDbtSpeed = geomean(DbtSpeedups);
  J.key("geomean_mips_dbt");
  J.value(GDbt);
  J.key("geomean_mips_fast");
  J.value(GFast);
  J.key("geomean_mips_slow");
  J.value(GSlow);
  J.key("geomean_speedup");
  J.value(GSpeed);
  J.key("geomean_dbt_speedup");
  J.value(GDbtSpeed);
  J.endObject();

  std::printf("%-8s %12.2f %12.2f %12.2f %7.2fx %7.2fx  (geomean)\n",
              "geomean", GDbt, GFast, GSlow, GSpeed, GDbtSpeed);

  writeJsonDoc(Args.JsonPath, J.take() + "\n");
  std::printf("results written to %s\n", Args.JsonPath.c_str());
  return 0;
}
