//===- bench/sim_throughput.cpp - Raw interpreter throughput --------------===//
//
// Instructions/second of the bare simulator — no tool, no trace sink, no
// hooks. Each workload runs twice per configuration:
//
//   fast   the default fused loop (translation cache, span copies, batched
//          stats) that engages whenever nothing observes mid-run state.
//   slow   the fully checked per-instruction loop (EnableFastPath = false),
//          i.e. the historical interpreter the fast path must match.
//
// The headline numbers are geomean Minst/s for both configurations and the
// fast/slow speedup. Emits BENCH_sim_throughput.json; bench-smoke compares
// it (advisorily) against the committed baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

namespace {

struct Measure {
  double Seconds = 0;
  uint64_t Insts = 0;
  double mips() const { return Seconds > 0 ? double(Insts) / Seconds / 1e6 : 0; }
};

/// Repeats fresh runs of \p Exe until \p MinSeconds of simulated execution
/// has been timed (at least one run), so short workloads still produce a
/// stable rate.
Measure measure(const obj::Executable &Exe, bool FastPath, double MinSeconds) {
  Measure M;
  do {
    sim::MachineOptions Opts;
    Opts.EnableFastPath = FastPath;
    sim::Machine Mach(Exe, Opts);
    Stopwatch T;
    sim::RunResult R = Mach.run();
    M.Seconds += T.seconds();
    if (R.Status != sim::RunStatus::Exited) {
      std::fprintf(stderr, "workload did not exit cleanly: %s\n",
                   R.FaultMessage.c_str());
      std::exit(1);
    }
    M.Insts += Mach.stats().Instructions;
  } while (M.Seconds < MinSeconds);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv, "BENCH_sim_throughput.json");
  // Smoke keeps CI fast; full runs time each workload long enough for a
  // stable Minst/s figure.
  const double MinSeconds = Args.Smoke ? 0.1 : 0.5;
  const char *Names[] = {"crc", "qsort", "matmul", "sieve", "bubble", "rle"};

  obs::JsonWriter J;
  J.beginObject();
  J.key("bench");
  J.value("sim_throughput");
  J.key("smoke");
  J.value(Args.Smoke);
  J.key("workloads");
  J.beginArray();

  std::printf("%-8s %12s %12s %8s\n", "workload", "fast Mi/s", "slow Mi/s",
              "speedup");
  std::vector<double> FastMips, SlowMips, Speedups;
  for (const char *Name : Names) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "missing workload %s\n", Name);
      return 1;
    }
    DiagEngine Diags;
    obj::Executable Exe;
    if (!buildApplication(W->Source, Exe, Diags)) {
      std::fprintf(stderr, "%s failed to build:\n%s", Name,
                   Diags.str().c_str());
      return 1;
    }
    Measure Fast = measure(Exe, /*FastPath=*/true, MinSeconds);
    Measure Slow = measure(Exe, /*FastPath=*/false, MinSeconds);
    double Speedup = Slow.mips() > 0 ? Fast.mips() / Slow.mips() : 0;
    FastMips.push_back(Fast.mips());
    SlowMips.push_back(Slow.mips());
    Speedups.push_back(Speedup);

    std::printf("%-8s %12.2f %12.2f %7.2fx\n", Name, Fast.mips(), Slow.mips(),
                Speedup);

    J.beginObject();
    J.key("name");
    J.value(Name);
    J.key("insts");
    J.value(uint64_t(Fast.Insts));
    J.key("fast");
    J.beginObject();
    J.key("seconds");
    J.value(Fast.Seconds);
    J.key("mips");
    J.value(Fast.mips());
    J.endObject();
    J.key("slow");
    J.beginObject();
    J.key("seconds");
    J.value(Slow.Seconds);
    J.key("mips");
    J.value(Slow.mips());
    J.endObject();
    J.key("speedup");
    J.value(Speedup);
    J.endObject();
  }
  J.endArray();

  double GFast = geomean(FastMips), GSlow = geomean(SlowMips),
         GSpeed = geomean(Speedups);
  J.key("geomean_mips_fast");
  J.value(GFast);
  J.key("geomean_mips_slow");
  J.value(GSlow);
  J.key("geomean_speedup");
  J.value(GSpeed);
  J.endObject();

  std::printf("%-8s %12.2f %12.2f %7.2fx  (geomean)\n", "geomean", GFast,
              GSlow, GSpeed);

  writeJsonDoc(Args.JsonPath, J.take() + "\n");
  std::printf("results written to %s\n", Args.JsonPath.c_str());
  return 0;
}
