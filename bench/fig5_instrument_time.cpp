//===- bench/fig5_instrument_time.cpp - Paper Figure 5 --------------------===//
//
// "Time taken by ATOM to instrument 20 SPEC92 benchmark programs": for each
// of the eleven tools, the wall-clock time to run the full ATOM pipeline
// (compile+link the analysis routines, lift the application, run the user's
// instrumentation routine, insert the calls, regenerate the executable)
// over all 20 workloads, plus the per-program average.
//
// Absolute numbers are not comparable with the paper's Alpha AXP 3000/400:
// our programs are smaller and the host is decades newer. The *shape* to
// check (EXPERIMENTS.md): pipe is the slowest tool (it does static pipeline
// scheduling per block at instrumentation time), malloc is the fastest
// (it instruments a single procedure).
//
// After the serial per-tool sweep (the figure itself), the same
// tools x programs matrix runs again through runAtomBatch() — parallel
// across --jobs workers with per-tool/per-program pipeline artifacts
// cached — and the serial/batch wall-clock ratio is reported as
// "speedup" (docs/PIPELINE.md). Instrumentation-point totals are
// cross-checked between the two sweeps.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

int main(int argc, char **argv) {
  BenchArgs Args = BenchArgs::parse(argc, argv, "BENCH_fig5.json");
  std::vector<obj::Executable> Suite =
      buildSuite(Args.Smoke ? 4 : 0, Args.Jobs);

  std::printf("Figure 5: time taken by ATOM to instrument the %zu-program "
              "suite\n",
              Suite.size());
  std::printf("%-9s | %-44s | %10s | %9s | %8s\n", "tool", "description",
              "total (s)", "avg (ms)", "points");
  std::printf("----------+----------------------------------------------+-"
              "-----------+-----------+---------\n");

  obs::JsonWriter J;
  J.beginObject();
  J.key("figure");
  J.value("fig5");
  J.key("workloads");
  J.value(uint64_t(Suite.size()));
  J.key("smoke");
  J.value(Args.Smoke);
  // Both sweeps below run this one configuration; the stamp keeps
  // compare_bench.py from comparing documents measured under different
  // configurations (e.g. an ATOM_OPT=O2 environment).
  writeConfigStamp(J, AtomOptions());
  J.key("tools");
  J.beginArray();

  double GrandTotal = 0;
  uint64_t SerialPoints = 0;
  for (const Tool &T : tools::allTools()) {
    Stopwatch Timer;
    unsigned Points = 0;
    for (const obj::Executable &App : Suite) {
      InstrumentedProgram Out = instrumentOrExit(App, T);
      Points += Out.Stats.Points;
    }
    double Secs = Timer.seconds();
    GrandTotal += Secs;
    SerialPoints += Points;
    double AvgMs = 1000.0 * Secs / double(Suite.size());
    std::printf("%-9s | %-44s | %10.3f | %9.2f | %8u\n", T.Name.c_str(),
                T.Description.c_str(), Secs, AvgMs, Points);
    J.beginObject();
    J.key("tool");
    J.value(T.Name);
    J.key("total_s");
    J.value(Secs);
    J.key("avg_ms");
    J.value(AvgMs);
    J.key("points");
    J.value(uint64_t(Points));
    J.endObject();
  }
  J.endArray();
  J.key("total_s");
  J.value(GrandTotal);

  std::printf("----------+----------------------------------------------+-"
              "-----------+-----------+---------\n");
  std::printf("total instrumentation time: %.3f s (%zu tools x %zu "
              "programs)\n",
              GrandTotal, tools::allTools().size(), Suite.size());

  // The same matrix through the parallel, cached batch driver.
  std::vector<const obj::Executable *> Apps;
  for (const obj::Executable &App : Suite)
    Apps.push_back(&App);
  std::vector<const Tool *> Ts;
  for (const Tool &T : tools::allTools())
    Ts.push_back(&T);

  AtomOptions Opts;
  Opts.Jobs = Args.Jobs;
  PipelineCache Cache;
  std::vector<BatchResult> Results;
  DiagEngine Diags;
  Stopwatch BatchTimer;
  bool Ok = runAtomBatch(Apps, Ts, Opts, Results, Diags, &Cache);
  double BatchSecs = BatchTimer.seconds();
  if (!Ok) {
    std::fprintf(stderr, "batch instrumentation failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  uint64_t BatchPoints = 0;
  for (const BatchResult &R : Results)
    BatchPoints += R.Prog.Stats.Points;
  if (BatchPoints != SerialPoints) {
    std::fprintf(stderr,
                 "point mismatch: serial sweep saw %llu, batch saw %llu\n",
                 (unsigned long long)SerialPoints,
                 (unsigned long long)BatchPoints);
    return 1;
  }

  CacheStats CS = Cache.stats();
  unsigned Jobs = Args.Jobs ? Args.Jobs : ThreadPool::defaultConcurrency();
  double Speedup = BatchSecs > 0 ? GrandTotal / BatchSecs : 0;
  std::printf("batch instrumentation time: %.3f s (--jobs %u, cache: %llu "
              "hits, %llu misses, %.1f KiB)\n",
              BatchSecs, Jobs, (unsigned long long)CS.Hits,
              (unsigned long long)CS.Misses, double(CS.Bytes) / 1024.0);
  std::printf("speedup over serial: %.2fx\n", Speedup);

  J.key("batch_total_s");
  J.value(BatchSecs);
  J.key("jobs");
  J.value(uint64_t(Jobs));
  J.key("speedup");
  J.value(Speedup);
  J.key("cache");
  J.beginObject();
  J.key("hits");
  J.value(CS.Hits);
  J.key("misses");
  J.value(CS.Misses);
  J.key("bytes");
  J.value(CS.Bytes);
  J.endObject();
  J.endObject();
  writeJsonDoc(Args.JsonPath, J.take() + "\n");
  std::printf("results written to %s\n", Args.JsonPath.c_str());
  return 0;
}
