//===- bench/fig5_instrument_time.cpp - Paper Figure 5 --------------------===//
//
// "Time taken by ATOM to instrument 20 SPEC92 benchmark programs": for each
// of the eleven tools, the wall-clock time to run the full ATOM pipeline
// (compile+link the analysis routines, lift the application, run the user's
// instrumentation routine, insert the calls, regenerate the executable)
// over all 20 workloads, plus the per-program average.
//
// Absolute numbers are not comparable with the paper's Alpha AXP 3000/400:
// our programs are smaller and the host is decades newer. The *shape* to
// check (EXPERIMENTS.md): pipe is the slowest tool (it does static pipeline
// scheduling per block at instrumentation time), malloc is the fastest
// (it instruments a single procedure).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

int main() {
  std::vector<obj::Executable> Suite = buildSuite();

  std::printf("Figure 5: time taken by ATOM to instrument the 20-program "
              "suite\n");
  std::printf("%-9s | %-44s | %10s | %9s | %8s\n", "tool", "description",
              "total (s)", "avg (ms)", "points");
  std::printf("----------+----------------------------------------------+-"
              "-----------+-----------+---------\n");

  double GrandTotal = 0;
  for (const Tool &T : tools::allTools()) {
    Stopwatch Timer;
    unsigned Points = 0;
    for (const obj::Executable &App : Suite) {
      InstrumentedProgram Out = instrumentOrExit(App, T);
      Points += Out.Stats.Points;
    }
    double Secs = Timer.seconds();
    GrandTotal += Secs;
    std::printf("%-9s | %-44s | %10.3f | %9.2f | %8u\n", T.Name.c_str(),
                T.Description.c_str(), Secs,
                1000.0 * Secs / double(Suite.size()), Points);
  }
  std::printf("----------+----------------------------------------------+-"
              "-----------+-----------+---------\n");
  std::printf("total instrumentation time: %.3f s (11 tools x 20 "
              "programs)\n",
              GrandTotal);
  return 0;
}
