//===- bench/ablation_regsave.cpp - Register-save strategies (E3) ---------===//
//
// Paper §4 "Reducing Procedure Call Overhead": ATOM computes data-flow
// summaries of the analysis routines and saves only the registers that may
// be modified; register renaming shrinks the sets further. This ablation
// compares save strategies on the branch and cache tools:
//
//   save-all      save every caller-save register at every call (baseline)
//   summary       wrapper saves the data-flow-summary set (paper default)
//   no-rename     summary without register renaming
//   direct        saves folded into the analysis prologue (paper's
//                 "higher optimization option")
//   distributed   scratch saves delayed into the routines that use them
//   liveness      per-site saves of live registers only (paper future work)
//
// Expected shape: save-all is the most expensive; summary < save-all;
// renaming never hurts; direct ~ summary minus the wrapper indirection.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

namespace {

struct Config {
  const char *Name;
  AtomOptions Opts;
};

std::vector<Config> configs() {
  std::vector<Config> Cs;
  AtomOptions O;
  O.Strategy = AtomOptions::SaveStrategy::SaveAll;
  Cs.push_back({"save-all", O});
  O.Strategy = AtomOptions::SaveStrategy::WrapperSummary;
  Cs.push_back({"summary", O});
  O.RenameAnalysisRegs = false;
  Cs.push_back({"no-rename", O});
  O.RenameAnalysisRegs = true;
  O.Strategy = AtomOptions::SaveStrategy::DirectInline;
  Cs.push_back({"direct", O});
  O.Strategy = AtomOptions::SaveStrategy::Distributed;
  Cs.push_back({"distributed", O});
  O.Strategy = AtomOptions::SaveStrategy::SiteLiveness;
  Cs.push_back({"liveness", O});
  return Cs;
}

} // namespace

int main() {
  std::vector<obj::Executable> Suite = buildSuite();
  std::vector<uint64_t> BaseInsts;
  for (const obj::Executable &App : Suite)
    BaseInsts.push_back(runInsts(App));

  std::printf("Ablation E3: register-save strategy vs. instrumented "
              "execution time\n");
  std::printf("%-8s | %-12s | %9s | %12s | %10s\n", "tool", "strategy",
              "ratio", "insts added", "save slots");
  std::printf("---------+--------------+-----------+--------------+---------"
              "--\n");

  for (const char *ToolName : {"branch", "cache"}) {
    const Tool *T = tools::findTool(ToolName);
    for (const Config &C : configs()) {
      std::vector<double> Ratios;
      uint64_t Inserted = 0, Slots = 0;
      for (size_t I = 0; I < Suite.size(); ++I) {
        InstrumentedProgram Out = instrumentOrExit(Suite[I], *T, C.Opts);
        Inserted += Out.Stats.InsertedInsts;
        Slots += Out.Stats.SaveSlots;
        Ratios.push_back(double(runInsts(Out.Exe)) /
                         double(BaseInsts[I]));
      }
      std::printf("%-8s | %-12s | %8.2fx | %12llu | %10llu\n", ToolName,
                  C.Name, geomean(Ratios), (unsigned long long)Inserted,
                  (unsigned long long)Slots);
    }
    std::printf("---------+--------------+-----------+--------------+------"
                "-----\n");
  }
  return 0;
}
