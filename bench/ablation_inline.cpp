//===- bench/ablation_inline.cpp - Analysis inlining (paper future work) --===//
//
// Paper §4: "Optimizations such as inlining further reduce the overhead of
// procedure calls at the cost of increasing the code size. These
// refinements have not been added to the current system." This repository
// implements them (AtomOptions::InlineAnalysis): straight-line leaf
// analysis routines are copied into the instrumentation site, removing the
// call, the return, and the ra save/restore.
//
// Expected shape: block-granularity tools (dyninst, pipe, prof, gprof)
// improve the most; text size grows.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

int main() {
  std::vector<obj::Executable> Suite = buildSuite();
  std::vector<uint64_t> BaseInsts;
  for (const obj::Executable &App : Suite)
    BaseInsts.push_back(runInsts(App));

  AtomOptions Off;
  AtomOptions On;
  On.InlineAnalysis = true;

  std::printf("Ablation: inlining straight-line analysis routines into "
              "sites\n");
  std::printf("%-9s | %10s | %10s | %9s | %16s\n", "tool", "calls",
              "inlined", "saving", "text growth");
  std::printf("----------+------------+------------+-----------+-----------"
              "------\n");

  for (const Tool &T : tools::allTools()) {
    std::vector<double> ROff, ROn;
    uint64_t TextOff = 0, TextOn = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      InstrumentedProgram A = instrumentOrExit(Suite[I], T, Off);
      InstrumentedProgram B = instrumentOrExit(Suite[I], T, On);
      TextOff += A.Exe.Text.size();
      TextOn += B.Exe.Text.size();
      ROff.push_back(double(runInsts(A.Exe)) / double(BaseInsts[I]));
      ROn.push_back(double(runInsts(B.Exe)) / double(BaseInsts[I]));
    }
    double GOff = geomean(ROff), GOn = geomean(ROn);
    std::printf("%-9s | %9.2fx | %9.2fx | %8.1f%% | %+14.1f%%\n",
                T.Name.c_str(), GOff, GOn, 100.0 * (GOff - GOn) / GOff,
                100.0 * (double(TextOn) - double(TextOff)) /
                    double(TextOff));
  }
  return 0;
}
