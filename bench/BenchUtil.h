//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//

#ifndef ATOM_BENCH_BENCHUTIL_H
#define ATOM_BENCH_BENCHUTIL_H

#include "atom/Driver.h"
#include "sim/Machine.h"
#include "tools/Tools.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace atom {
namespace bench {

/// Builds all 20 workload executables once.
inline std::vector<obj::Executable> buildSuite() {
  std::vector<obj::Executable> Suite;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    DiagEngine Diags;
    obj::Executable Exe;
    if (!buildApplication(W.Source, Exe, Diags)) {
      std::fprintf(stderr, "workload %s failed to build:\n%s", W.Name,
                   Diags.str().c_str());
      std::exit(1);
    }
    Suite.push_back(std::move(Exe));
  }
  return Suite;
}

/// Simulated instruction count of a clean run (the "execution time" unit).
inline uint64_t runInsts(const obj::Executable &Exe) {
  sim::Machine M(Exe);
  sim::RunResult R = M.run();
  if (R.Status != sim::RunStatus::Exited || R.ExitCode != 0) {
    std::fprintf(stderr, "benchmark program did not exit cleanly: %s\n",
                 R.FaultMessage.c_str());
    std::exit(1);
  }
  return M.stats().Instructions;
}

inline InstrumentedProgram instrumentOrExit(const obj::Executable &App,
                                            const Tool &T,
                                            const AtomOptions &Opts =
                                                AtomOptions()) {
  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, T, Opts, Out, Diags)) {
    std::fprintf(stderr, "atom failed for tool %s:\n%s", T.Name.c_str(),
                 Diags.str().c_str());
    std::exit(1);
  }
  return Out;
}

inline double geomean(const std::vector<double> &Xs) {
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(X);
  return Xs.empty() ? 0 : std::exp(LogSum / double(Xs.size()));
}

} // namespace bench
} // namespace atom

#endif // ATOM_BENCH_BENCHUTIL_H
