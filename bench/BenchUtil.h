//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//

#ifndef ATOM_BENCH_BENCHUTIL_H
#define ATOM_BENCH_BENCHUTIL_H

#include "atom/Batch.h"
#include "atomd/Protocol.h"
#include "obs/Obs.h"
#include "sim/Machine.h"
#include "support/ThreadPool.h"
#include "tools/Tools.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace atom {
namespace bench {

/// Common figure-benchmark command line: `--smoke` caps the workload
/// suite for CI smoke runs, `--json <path>` overrides where the
/// machine-readable results document lands, `--jobs N` sets the worker
/// count for suite building and batched instrumentation (0 = one per
/// hardware thread).
struct BenchArgs {
  bool Smoke = false;
  unsigned Jobs = 0;
  std::string JsonPath;

  static BenchArgs parse(int Argc, char **Argv,
                         const std::string &DefaultJson) {
    BenchArgs A;
    A.JsonPath = DefaultJson;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--smoke")
        A.Smoke = true;
      else if ((Arg == "--jobs" || Arg == "-j") && I + 1 < Argc)
        A.Jobs = unsigned(std::strtoul(Argv[++I], nullptr, 0));
      else if (Arg == "--json" && I + 1 < Argc)
        A.JsonPath = Argv[++I];
      else {
        std::fprintf(stderr,
                     "usage: %s [--smoke] [--jobs N] [--json <path>]\n",
                     Argv[0]);
        std::exit(2);
      }
    }
    return A;
  }
};

/// Builds the workload executables once, across \p Jobs worker threads
/// (0 = one per hardware thread); \p MaxWorkloads caps the suite (0 = all
/// 20) for smoke runs. Suite-build time is reported separately so figure
/// timings stay pure instrumentation/simulation time.
inline std::vector<obj::Executable> buildSuite(size_t MaxWorkloads = 0,
                                               unsigned Jobs = 0) {
  Stopwatch Timer;
  std::vector<const workloads::Workload *> Wanted;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    if (MaxWorkloads && Wanted.size() >= MaxWorkloads)
      break;
    Wanted.push_back(&W);
  }
  std::vector<obj::Executable> Suite(Wanted.size());
  std::atomic<bool> Failed{false};
  unsigned Threads = Jobs ? Jobs : ThreadPool::defaultConcurrency();
  {
    ThreadPool Pool(unsigned(std::min<size_t>(Threads, Wanted.size())));
    Pool.parallelFor(Wanted.size(), [&](size_t I) {
      DiagEngine Diags;
      if (!buildApplication(Wanted[I]->Source, Suite[I], Diags)) {
        std::fprintf(stderr, "workload %s failed to build:\n%s",
                     Wanted[I]->Name, Diags.str().c_str());
        Failed.store(true);
      }
    });
  }
  if (Failed.load())
    std::exit(1);
  std::printf("suite build: %.3f s (%zu programs, %u workers)\n",
              Timer.seconds(), Suite.size(),
              unsigned(std::min<size_t>(Threads, Suite.size())));
  return Suite;
}

/// Writes \p Json (a complete document) to \p Path atomically: the bytes
/// land in a sibling temp file which is renamed over \p Path only once
/// fully flushed (the atomd::Store pattern). A failed bench run therefore
/// leaves either the previous complete document or none at all — never a
/// truncated one for CI's compare step to trip over.
inline void writeJsonDoc(const std::string &Path, const std::string &Json) {
  const std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Tmp.c_str());
      std::exit(1);
    }
    Out << Json;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "short write to '%s'\n", Tmp.c_str());
      std::remove(Tmp.c_str());
      std::exit(1);
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename '%s' to '%s'\n", Tmp.c_str(),
                 Path.c_str());
    std::remove(Tmp.c_str());
    std::exit(1);
  }
}

/// Simulated instruction count of a clean run (the "execution time" unit).
inline uint64_t runInsts(const obj::Executable &Exe) {
  sim::Machine M(Exe);
  sim::RunResult R = M.run();
  if (R.Status != sim::RunStatus::Exited || R.ExitCode != 0) {
    std::fprintf(stderr, "benchmark program did not exit cleanly: %s\n",
                 R.FaultMessage.c_str());
    std::exit(1);
  }
  return M.stats().Instructions;
}

inline InstrumentedProgram instrumentOrExit(const obj::Executable &App,
                                            const Tool &T,
                                            const AtomOptions &Opts =
                                                AtomOptions()) {
  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, T, Opts, Out, Diags)) {
    std::fprintf(stderr, "atom failed for tool %s:\n%s", T.Name.c_str(),
                 Diags.str().c_str());
    std::exit(1);
  }
  return Out;
}

/// Stamps the optimization configuration that produced a result row into
/// the JSON document, so compare_bench.py never compares rows measured
/// under different configurations (rows from other configs also carry a
/// distinguishing name suffix, e.g. "cache@O2").
inline void writeConfigStamp(obs::JsonWriter &J, const AtomOptions &O) {
  AtomOptions R = resolveAtomOptions(O);
  J.key("config");
  J.beginObject();
  J.key("strategy");
  J.value(atomd::saveStrategyName(R.Strategy));
  J.key("inline");
  J.value(R.InlineAnalysis);
  J.key("inline-limit");
  J.value(uint64_t(R.InlineLimit));
  J.key("opt");
  J.value(optPresetName(R.Opt));
  J.endObject();
}

inline double geomean(const std::vector<double> &Xs) {
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(X);
  return Xs.empty() ? 0 : std::exp(LogSum / double(Xs.size()));
}

} // namespace bench
} // namespace atom

#endif // ATOM_BENCH_BENCHUTIL_H
