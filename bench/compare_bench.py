#!/usr/bin/env python3
"""Advisory comparison of a fresh BENCH_*.json against a committed baseline.

Prints a per-key delta table and flags regressions beyond a tolerance, but
always exits 0: CI runners are noisy, so the comparison informs rather than
gates. Only stdlib is used.

Usage: compare_bench.py <baseline.json> <current.json> [--tolerance PCT]
"""

import argparse
import json
import sys


def flatten(doc, prefix=""):
    """Numeric leaves of a JSON document as {dotted.path: value}."""
    out = {}
    if isinstance(doc, dict):
        for key, val in doc.items():
            out.update(flatten(val, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for idx, val in enumerate(doc):
            name = idx
            if isinstance(val, dict):
                name = val.get("name", val.get("tool", idx))
            out.update(flatten(val, f"{prefix}{name}."))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix[:-1]] = float(doc)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=20.0,
                        help="percent slack before a delta is flagged")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = flatten(json.load(f))
    with open(args.current) as f:
        cur = flatten(json.load(f))

    # Throughput-style keys where lower is a regression, and overhead
    # ratios (fig6 instrumented/uninstrumented execution time) where
    # *higher* is a regression; timing keys (seconds) vary with machine
    # load and are reported but never flagged.
    rate_keys = [k for k in base
                 if "mips" in k.rsplit(".", 1)[-1] or "speedup" in k]
    ratio_keys = [k for k in base if k.rsplit(".", 1)[-1] == "ratio"]
    flagged = []
    print(f"{'metric':48s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for key in sorted(rate_keys + ratio_keys):
        if key not in cur:
            print(f"{key:48s} {base[key]:12.2f} {'missing':>12s}")
            flagged.append((key, "missing"))
            continue
        delta = 0.0 if base[key] == 0 else (cur[key] / base[key] - 1) * 100
        bad = delta > args.tolerance if key in ratio_keys \
            else delta < -args.tolerance
        mark = ""
        if bad:
            mark = "  <-- regression?"
            flagged.append((key, f"{delta:+.1f}%"))
        print(f"{key:48s} {base[key]:12.2f} {cur[key]:12.2f} "
              f"{delta:+7.1f}%{mark}")

    if flagged:
        print(f"\nadvisory: {len(flagged)} metric(s) beyond "
              f"-{args.tolerance:.0f}% of baseline (not failing the build):")
        for key, what in flagged:
            print(f"  {key}: {what}")
    else:
        print("\nall rate metrics within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
