//===- bench/trace_throughput.cpp - ATF encode/decode throughput ----------===//
//
// How fast is the trace subsystem itself? Two measurements:
//
//   synthetic  a generated event stream with realistic kind mix and PC
//              locality, encoded and decoded in memory — the raw codec
//              ceiling, reported in events/s and MB/s of encoded payload.
//   recorded   real workload traces from the simulator sink, decoded and
//              replayed through the offline cache model — the analyze-many
//              half of the record-once workflow.
//
// Also prints bytes/event, the figure that justifies the delta+varint
// encoding (sequential plain events should cost about one byte).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "trace/Replay.h"
#include "trace/TraceSink.h"

#include <random>

using namespace atom;
using namespace atom::bench;
using namespace atom::trace;

namespace {

std::vector<Event> syntheticStream(size_t N) {
  std::mt19937_64 Rng(42);
  std::vector<Event> Events;
  Events.reserve(N);
  uint64_t PC = 0x120000000, Addr = 0x140000000;
  while (Events.size() < N) {
    // A "basic block": a few plain ops, some memory traffic, a branch.
    unsigned Len = 3 + unsigned(Rng() % 8);
    for (unsigned I = 0; I < Len && Events.size() < N; ++I) {
      Event E;
      E.PC = PC;
      PC += 4;
      unsigned Dice = unsigned(Rng() % 10);
      if (Dice < 2) {
        E.Kind = EventKind::Load;
        Addr += int64_t(Rng() % 256) - 64;
        E.Addr = Addr;
        E.Size = 8;
      } else if (Dice < 3) {
        E.Kind = EventKind::Store;
        E.Addr = Addr + Rng() % 4096;
        E.Size = 8;
      }
      Events.push_back(E);
    }
    if (Events.size() < N) {
      Event E;
      E.Kind = EventKind::CondBranch;
      E.PC = PC;
      E.Taken = Rng() % 4 != 0;
      if (E.Taken)
        PC = PC - 4 * (Rng() % 64);
      else
        PC += 4;
      Events.push_back(E);
    }
  }
  return Events;
}

void reportRate(const char *What, uint64_t Events, uint64_t Bytes,
                double Seconds) {
  std::printf("%-22s %9.1f Mevents/s %9.1f MB/s  (%llu events, "
              "%.2f bytes/event, %.3fs)\n",
              What, double(Events) / Seconds / 1e6,
              double(Bytes) / Seconds / 1e6, (unsigned long long)Events,
              double(Bytes) / double(Events), Seconds);
}

} // namespace

int main() {
  // --- Synthetic stream: codec ceiling. ---
  const size_t N = 4'000'000;
  std::vector<Event> Events = syntheticStream(N);

  Stopwatch Encode;
  AtfWriter W;
  for (const Event &E : Events)
    W.append(E);
  std::vector<uint8_t> Bytes = W.finish();
  double EncodeSec = Encode.seconds();

  AtfReader R;
  if (R.open(Bytes) != AtfReader::Error::None) {
    std::fprintf(stderr, "self-encoded trace failed to open\n");
    return 1;
  }
  Stopwatch Decode;
  uint64_t Decoded = 0;
  if (!R.forEach([&](const Event &) {
        ++Decoded;
        return true;
      })) {
    std::fprintf(stderr, "self-encoded trace failed to decode\n");
    return 1;
  }
  double DecodeSec = Decode.seconds();
  if (Decoded != Events.size()) {
    std::fprintf(stderr, "decode returned %llu of %zu events\n",
                 (unsigned long long)Decoded, Events.size());
    return 1;
  }

  std::printf("ATF throughput (payload %llu bytes for %zu events)\n",
              (unsigned long long)R.stat().PayloadBytes, Events.size());
  reportRate("synthetic encode", Events.size(), R.stat().PayloadBytes,
             EncodeSec);
  reportRate("synthetic decode", Decoded, R.stat().PayloadBytes, DecodeSec);

  // --- Recorded workload traces: decode + cache replay. ---
  std::printf("\nrecorded workload traces (simulator sink, window to "
              "__exit)\n");
  for (const char *Name : {"crc", "qsort", "matmul"}) {
    const workloads::Workload *WL = workloads::findWorkload(Name);
    if (!WL) {
      std::fprintf(stderr, "missing workload %s\n", Name);
      return 1;
    }
    DiagEngine Diags;
    obj::Executable App;
    if (!buildApplication(WL->Source, App, Diags)) {
      std::fprintf(stderr, "%s failed to build:\n%s", Name,
                   Diags.str().c_str());
      return 1;
    }
    std::vector<uint8_t> Atf;
    sim::RunResult Run;
    Stopwatch Record;
    if (!recordTrace(App, /*FullRun=*/false, Atf, Run, Diags)) {
      std::fprintf(stderr, "%s failed to record:\n%s", Name,
                   Diags.str().c_str());
      return 1;
    }
    double RecordSec = Record.seconds();

    AtfReader WR;
    if (WR.open(Atf) != AtfReader::Error::None) {
      std::fprintf(stderr, "%s: recorded trace failed to open\n", Name);
      return 1;
    }
    Stopwatch Replay;
    CacheReplayResult Cache;
    if (!replayCache(WR, Cache)) {
      std::fprintf(stderr, "%s: replay failed\n", Name);
      return 1;
    }
    double ReplaySec = Replay.seconds();

    std::string Label = std::string(Name) + " record";
    reportRate(Label.c_str(), WR.stat().EventCount, WR.stat().PayloadBytes,
               RecordSec);
    Label = std::string(Name) + " cache replay";
    reportRate(Label.c_str(), WR.stat().EventCount, WR.stat().PayloadBytes,
               ReplaySec);
  }
  return 0;
}
