//===- bench/ablation_wrapper.cpp - Wrapper vs. direct saves (E4) ---------===//
//
// Paper §4: the default mechanism creates a wrapper routine per analysis
// procedure (debugger friendly, but "creates an indirection in calls to
// analysis routines"); the higher optimization option adds the saves to the
// analysis routine itself so sites call it directly. This bench measures
// the indirection cost per tool.
//
// Expected shape: direct <= wrapper for every tool; the difference grows
// with event frequency (largest for cache, negligible for io/syscall).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace atom;
using namespace atom::bench;

int main() {
  std::vector<obj::Executable> Suite = buildSuite();
  std::vector<uint64_t> BaseInsts;
  for (const obj::Executable &App : Suite)
    BaseInsts.push_back(runInsts(App));

  AtomOptions Wrapper;
  Wrapper.Strategy = AtomOptions::SaveStrategy::WrapperSummary;
  AtomOptions Direct;
  Direct.Strategy = AtomOptions::SaveStrategy::DirectInline;

  std::printf("Ablation E4: wrapper indirection vs. direct calls with "
              "patched prologues\n");
  std::printf("%-9s | %10s | %10s | %9s\n", "tool", "wrapper", "direct",
              "saving");
  std::printf("----------+------------+------------+----------\n");

  for (const Tool &T : tools::allTools()) {
    std::vector<double> RW, RD;
    for (size_t I = 0; I < Suite.size(); ++I) {
      InstrumentedProgram W = instrumentOrExit(Suite[I], T, Wrapper);
      InstrumentedProgram D = instrumentOrExit(Suite[I], T, Direct);
      RW.push_back(double(runInsts(W.Exe)) / double(BaseInsts[I]));
      RD.push_back(double(runInsts(D.Exe)) / double(BaseInsts[I]));
    }
    double GW = geomean(RW), GD = geomean(RD);
    std::printf("%-9s | %9.2fx | %9.2fx | %8.1f%%\n", T.Name.c_str(), GW,
                GD, 100.0 * (GW - GD) / GW);
  }
  return 0;
}
