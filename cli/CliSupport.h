//===- cli/CliSupport.h - Shared helpers for the command-line tools -------===//

#ifndef ATOM_CLI_CLISUPPORT_H
#define ATOM_CLI_CLISUPPORT_H

#include "obj/ObjectModule.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "support/Support.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace atom {
namespace cli {

inline bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

inline bool readTextFile(const std::string &Path, std::string &Out) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    return false;
  Out.assign(Bytes.begin(), Bytes.end());
  return true;
}

inline bool writeFile(const std::string &Path,
                      const std::vector<uint8_t> &Bytes) {
  std::ofstream OutStream(Path, std::ios::binary);
  if (!OutStream)
    return false;
  OutStream.write(reinterpret_cast<const char *>(Bytes.data()),
                  long(Bytes.size()));
  return bool(OutStream);
}

[[noreturn]] inline void die(const std::string &Msg) {
  std::fprintf(stderr, "error: %s\n", Msg.c_str());
  std::exit(1);
}

[[noreturn]] inline void dieWithDiags(const std::string &Msg,
                                      const DiagEngine &Diags) {
  std::fprintf(stderr, "error: %s\n%s", Msg.c_str(), Diags.str().c_str());
  std::exit(1);
}

/// Loads an object module file, failing loudly.
inline obj::ObjectModule loadObject(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    die("cannot read '" + Path + "'");
  obj::ObjectModule M;
  if (!obj::ObjectModule::deserialize(Bytes, M))
    die("'" + Path + "' is not an AOBJ object module");
  return M;
}

/// Loads an executable file, failing loudly.
inline obj::Executable loadExecutable(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    die("cannot read '" + Path + "'");
  obj::Executable E;
  if (!obj::Executable::deserialize(Bytes, E))
    die("'" + Path + "' is not an AEXE executable");
  return E;
}

/// Strict numeric flag operand: the whole string must be one unsigned
/// integer (decimal, or 0x/0 prefixed). Dies with the offending flag
/// otherwise — bare strtoul silently turned `--jobs max` into jobs=0.
inline uint64_t parseUnsignedArg(const std::string &Flag,
                                 const std::string &Value) {
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Value.c_str(), &End, 0);
  if (Value.empty() || End == Value.c_str() || *End != '\0' ||
      errno == ERANGE || Value[0] == '-')
    die("invalid value '" + Value + "' for " + Flag +
        " (expected an unsigned integer)");
  return V;
}

/// parseUnsignedArg with an optional k/m/g (KiB/MiB/GiB) suffix, for byte
/// caps like --cache-bytes and --store-bytes.
inline uint64_t parseByteSizeArg(const std::string &Flag,
                                 const std::string &Value) {
  std::string Num = Value;
  uint64_t Shift = 0;
  if (!Num.empty()) {
    switch (Num.back()) {
    case 'k': case 'K': Shift = 10; break;
    case 'm': case 'M': Shift = 20; break;
    case 'g': case 'G': Shift = 30; break;
    default: break;
    }
    if (Shift)
      Num.pop_back();
  }
  uint64_t V = parseUnsignedArg(Flag, Num);
  if (Shift && V > (~uint64_t(0) >> Shift))
    die("value '" + Value + "' for " + Flag + " overflows");
  return V << Shift;
}

inline bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// `--metrics-out <file>` / `--metrics-format json|prom`, shared by every
/// CLI. consume() recognizes both `--flag value` and `--flag=value`
/// spellings; when an output file is requested the global registry is
/// enabled so the run actually collects something.
struct MetricsOptions {
  std::string OutPath;
  bool Prometheus = false;

  /// If Args[I] (with optional value at Args[I+1]) is a metrics flag,
  /// consumes it (advancing \p I past any value operand) and returns true.
  bool consume(int Argc, char **Argv, int &I) {
    size_t Idx = size_t(I);
    std::vector<std::string> Args(Argv + 1, Argv + Argc);
    --Idx; // Args omits argv[0].
    bool Hit = consume(Args, Idx);
    I = int(Idx) + 1;
    return Hit;
  }

  /// Same, over an already-collected argument vector.
  bool consume(const std::vector<std::string> &Args, size_t &I) {
    const std::string &Arg = Args[I];
    auto valueOf = [&](const std::string &Flag, std::string &V) {
      if (Arg == Flag) {
        if (I + 1 >= Args.size())
          die("missing value for " + Flag);
        V = Args[++I];
        return true;
      }
      if (Arg.rfind(Flag + "=", 0) == 0) {
        V = Arg.substr(Flag.size() + 1);
        return true;
      }
      return false;
    };
    if (valueOf("--metrics-out", OutPath)) {
      obs::Registry::global().setEnabled(true);
      return true;
    }
    std::string Fmt;
    if (valueOf("--metrics-format", Fmt)) {
      if (Fmt == "prom" || Fmt == "prometheus")
        Prometheus = true;
      else if (Fmt == "json")
        Prometheus = false;
      else
        die("unknown metrics format '" + Fmt + "' (json|prom)");
      return true;
    }
    return false;
  }

  /// Writes the registry to OutPath (no-op when no path was given).
  void write(obs::Registry &Reg = obs::Registry::global()) const {
    if (OutPath.empty())
      return;
    std::string Doc = Prometheus ? Reg.toPrometheus() : Reg.toJson();
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out)
      die("cannot write '" + OutPath + "'");
    Out << Doc;
  }
};

/// `--trace-out <file>`: emit a Chrome trace_event JSON document of this
/// run's flight-recorder records (plus, in connect mode, the daemon's
/// stitched per-request traces) — loadable in Perfetto or
/// chrome://tracing. Shares the MetricsOptions consume() conventions.
struct TraceOptions {
  std::string OutPath;

  bool consume(int Argc, char **Argv, int &I) {
    size_t Idx = size_t(I);
    std::vector<std::string> Args(Argv + 1, Argv + Argc);
    --Idx; // Args omits argv[0].
    bool Hit = consume(Args, Idx);
    I = int(Idx) + 1;
    return Hit;
  }

  bool consume(const std::vector<std::string> &Args, size_t &I) {
    const std::string &Arg = Args[I];
    std::string V;
    bool Hit = false;
    if (Arg == "--trace-out") {
      if (I + 1 >= Args.size())
        die("missing value for --trace-out");
      V = Args[++I];
      Hit = true;
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      V = Arg.substr(sizeof("--trace-out=") - 1);
      Hit = true;
    }
    if (Hit) {
      OutPath = V;
      // Tracing rides on spans, which record only while the registry is
      // enabled.
      obs::Registry::global().setEnabled(true);
    }
    return Hit;
  }

  /// Writes \p Rows as Chrome trace JSON to OutPath (no-op without one).
  void write(const std::vector<obs::TraceRecordRow> &Rows) const {
    if (OutPath.empty())
      return;
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out)
      die("cannot write '" + OutPath + "'");
    Out << obs::chromeTraceJson(Rows);
  }

  /// Convenience: this process's own ring, all records.
  void writeOwnRing(const std::string &Proc) const {
    if (OutPath.empty())
      return;
    write(obs::rowsFromRecords(obs::FlightRecorder::global().snapshot(),
                               Proc));
  }
};

} // namespace cli
} // namespace atom

#endif // ATOM_CLI_CLISUPPORT_H
