//===- cli/CliSupport.h - Shared helpers for the command-line tools -------===//

#ifndef ATOM_CLI_CLISUPPORT_H
#define ATOM_CLI_CLISUPPORT_H

#include "obj/ObjectModule.h"
#include "support/Support.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace atom {
namespace cli {

inline bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

inline bool readTextFile(const std::string &Path, std::string &Out) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    return false;
  Out.assign(Bytes.begin(), Bytes.end());
  return true;
}

inline bool writeFile(const std::string &Path,
                      const std::vector<uint8_t> &Bytes) {
  std::ofstream OutStream(Path, std::ios::binary);
  if (!OutStream)
    return false;
  OutStream.write(reinterpret_cast<const char *>(Bytes.data()),
                  long(Bytes.size()));
  return bool(OutStream);
}

[[noreturn]] inline void die(const std::string &Msg) {
  std::fprintf(stderr, "error: %s\n", Msg.c_str());
  std::exit(1);
}

[[noreturn]] inline void dieWithDiags(const std::string &Msg,
                                      const DiagEngine &Diags) {
  std::fprintf(stderr, "error: %s\n%s", Msg.c_str(), Diags.str().c_str());
  std::exit(1);
}

/// Loads an object module file, failing loudly.
inline obj::ObjectModule loadObject(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    die("cannot read '" + Path + "'");
  obj::ObjectModule M;
  if (!obj::ObjectModule::deserialize(Bytes, M))
    die("'" + Path + "' is not an AOBJ object module");
  return M;
}

/// Loads an executable file, failing loudly.
inline obj::Executable loadExecutable(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readFile(Path, Bytes))
    die("cannot read '" + Path + "'");
  obj::Executable E;
  if (!obj::Executable::deserialize(Bytes, E))
    die("'" + Path + "' is not an AEXE executable");
  return E;
}

inline bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

} // namespace cli
} // namespace atom

#endif // ATOM_CLI_CLISUPPORT_H
