//===- cli/atom.cpp - The atom command ------------------------------------===//
//
// The paper's command line was
//     atom prog inst.c anal.c -o prog.atom
// where inst.c (instrumentation routines) was compiled and linked with OM
// into a custom tool. Instrumentation routines here are host C++, so this
// command exposes the built-in tool suite; custom tools use the library
// API (see examples/).
//
//   atom prog.exe --tool <name> [-o prog.atom] [options]
//   atom --list-tools
//
// Options:
//   --strategy wrapper|direct|distributed|save-all|liveness
//   --inline                 inline straight-line analysis routines
//   --no-rename              disable analysis register renaming
//   --heap-offset N          partition the heap (paper's method 2)
//   --run [--dump <file>]    run the result immediately
//   --stats                  print instrumentation statistics and the
//                            per-phase timing tree
//   --metrics-out <file>     write metrics/spans/events document
//   --metrics-format json|prom
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atom/Recovery.h"
#include "sim/Machine.h"
#include "tools/Tools.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: atom <prog.exe> --tool <name> [-o <prog.atom>]\n"
               "            [--strategy wrapper|direct|distributed|"
               "save-all|liveness]\n"
               "            [--inline] [--no-rename] [--heap-offset N]\n"
               "            [--run] [--dump <file>] [--stats]\n"
               "            [--metrics-out <file>] "
               "[--metrics-format json|prom]\n"
               "       atom --list-tools\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input, Output, ToolName;
  std::vector<std::string> Dumps;
  AtomOptions Opts;
  MetricsOptions Metrics;
  bool Run = false, Stats = false, ListTools = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (Metrics.consume(argc, argv, I)) {
      continue;
    } else if (A == "--list-tools") {
      ListTools = true;
    } else if (A == "--tool" && I + 1 < argc) {
      ToolName = argv[++I];
    } else if (A == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (A == "--strategy" && I + 1 < argc) {
      std::string S = argv[++I];
      if (S == "wrapper")
        Opts.Strategy = AtomOptions::SaveStrategy::WrapperSummary;
      else if (S == "direct")
        Opts.Strategy = AtomOptions::SaveStrategy::DirectInline;
      else if (S == "distributed")
        Opts.Strategy = AtomOptions::SaveStrategy::Distributed;
      else if (S == "save-all")
        Opts.Strategy = AtomOptions::SaveStrategy::SaveAll;
      else if (S == "liveness")
        Opts.Strategy = AtomOptions::SaveStrategy::SiteLiveness;
      else
        die("unknown strategy '" + S + "'");
    } else if (A == "--inline") {
      Opts.InlineAnalysis = true;
    } else if (A == "--no-rename") {
      Opts.RenameAnalysisRegs = false;
    } else if (A == "--heap-offset" && I + 1 < argc) {
      Opts.AnalysisHeapOffset = strtoull(argv[++I], nullptr, 0);
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--dump" && I + 1 < argc) {
      Dumps.push_back(argv[++I]);
    } else if (A == "--stats") {
      Stats = true;
    } else if (!A.empty() && A[0] == '-') {
      usage();
    } else if (Input.empty()) {
      Input = A;
    } else {
      usage();
    }
  }

  if (ListTools) {
    for (const Tool &T : tools::allTools())
      std::printf("%-9s %s\n", T.Name.c_str(), T.Description.c_str());
    return 0;
  }
  if (Input.empty() || ToolName.empty())
    usage();

  const Tool *T = tools::findTool(ToolName);
  if (!T)
    die("unknown tool '" + ToolName + "' (try atom --list-tools)");

  // --stats wants the per-phase timing tree, so it needs spans collected
  // even without a --metrics-out file.
  if (Stats)
    obs::Registry::global().setEnabled(true);

  obj::Executable App;
  {
    obs::Span S("read");
    App = loadExecutable(Input);
  }

  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, *T, Opts, Out, Diags))
    dieWithDiags("instrumentation failed", Diags);

  if (Output.empty())
    Output = Input + ".atom";
  {
    obs::Span S("write");
    if (!writeFile(Output, Out.Exe.serialize()))
      die("cannot write '" + Output + "'");
  }

  if (Stats) {
    std::fprintf(stderr,
                 "points %u\ninserted-insts %u\nwrappers %u\n"
                 "patched-procs %u\nanalysis-procs %u\nstripped-procs %u\n"
                 "save-slots %u\ntext-bytes %zu (was %zu)\n",
                 Out.Stats.Points, Out.Stats.InsertedInsts,
                 Out.Stats.Wrappers, Out.Stats.PatchedProcs,
                 Out.Stats.AnalysisProcs, Out.Stats.StrippedProcs,
                 Out.Stats.SaveSlots, Out.Exe.Text.size(),
                 App.Text.size());
    std::fprintf(stderr, "%s",
                 obs::Registry::global().timingTree().c_str());
  }

  if (!Run) {
    Metrics.write();
    return 0;
  }

  // On a trap the tool's finalization still runs (re-entry at __exit), so
  // the report dumped below covers the execution up to the fault.
  sim::Machine M(Out.Exe);
  RecoveryResult RR;
  {
    obs::Span S("run");
    RR = runWithRecovery(Out.Exe, M);
  }
  const sim::RunResult &R = RR.Result;
  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  for (const std::string &F : Dumps)
    if (M.vfs().fileExists(F))
      std::printf("--- %s ---\n%s", F.c_str(),
                  M.vfs().fileContents(F).c_str());
  Metrics.write();
  if (R.Status == sim::RunStatus::Trap) {
    std::fprintf(stderr,
                 "atom: instrumented program trapped (%s): %s\n"
                 "atom: original pc 0x%llx%s\n",
                 sim::trapKindName(R.Trap), R.FaultMessage.c_str(),
                 (unsigned long long)RR.OrigFaultPC,
                 RR.OrigFaultPC ? "" : " (inserted/analysis code)");
    return 124;
  }
  if (R.Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "atom: instrumented program did not exit: %s\n",
                 R.FaultMessage.c_str());
    return 125;
  }
  return int(R.ExitCode & 0xFF);
}
