//===- cli/atom.cpp - The atom command ------------------------------------===//
//
// The paper's command line was
//     atom prog inst.c anal.c -o prog.atom
// where inst.c (instrumentation routines) was compiled and linked with OM
// into a custom tool. Instrumentation routines here are host C++, so this
// command exposes the built-in tool suite; custom tools use the library
// API (see examples/).
//
//   atom prog.exe --tool <name> [-o prog.atom] [options]
//   atom prog1.exe prog2.exe ... --tool t1,t2,... [options]   (batch mode)
//   atom --list-tools
//
// With several inputs and/or tools, every (tool, program) pair is
// instrumented — in parallel across --jobs workers, with per-tool and
// per-program pipeline artifacts cached (docs/PIPELINE.md) — and each
// result is written to <input>.<tool>.atom.
//
// Options:
//   --strategy wrapper|direct|distributed|save-all|liveness
//   --inline                 inline straight-line analysis routines
//   --no-rename              disable analysis register renaming
//   --heap-offset N          partition the heap (paper's method 2)
//   --jobs N, -j N           batch worker threads (0 = one per core)
//   --no-cache               disable pipeline memoization in batch mode
//   --run [--dump <file>]    run the result immediately (single pair only)
//   --stats                  print instrumentation statistics and the
//                            per-phase timing tree
//   --metrics-out <file>     write metrics/spans/events document
//   --metrics-format json|prom
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atom/Batch.h"
#include "atom/Recovery.h"
#include "sim/Machine.h"
#include "tools/Tools.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: atom <prog.exe>... --tool <name>[,<name>...] "
               "[-o <prog.atom>]\n"
               "            [--strategy wrapper|direct|distributed|"
               "save-all|liveness]\n"
               "            [--inline] [--no-rename] [--heap-offset N]\n"
               "            [--jobs N] [--no-cache]\n"
               "            [--run] [--dump <file>] [--stats]\n"
               "            [--metrics-out <file>] "
               "[--metrics-format json|prom]\n"
               "       atom --list-tools\n");
  std::exit(2);
}

/// Splits a comma-separated --tool argument ("cache,branch").
static std::vector<std::string> splitNames(const std::string &Arg) {
  std::vector<std::string> Names;
  size_t Pos = 0;
  while (Pos <= Arg.size()) {
    size_t Comma = Arg.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Arg.size();
    if (Comma > Pos)
      Names.push_back(Arg.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Names;
}

int main(int argc, char **argv) {
  std::string Output;
  std::vector<std::string> Inputs, ToolNames;
  std::vector<std::string> Dumps;
  AtomOptions Opts;
  MetricsOptions Metrics;
  bool Run = false, Stats = false, ListTools = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (Metrics.consume(argc, argv, I)) {
      continue;
    } else if (A == "--list-tools") {
      ListTools = true;
    } else if (A == "--tool" && I + 1 < argc) {
      for (const std::string &N : splitNames(argv[++I]))
        ToolNames.push_back(N);
    } else if (A == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (A == "--strategy" && I + 1 < argc) {
      std::string S = argv[++I];
      if (S == "wrapper")
        Opts.Strategy = AtomOptions::SaveStrategy::WrapperSummary;
      else if (S == "direct")
        Opts.Strategy = AtomOptions::SaveStrategy::DirectInline;
      else if (S == "distributed")
        Opts.Strategy = AtomOptions::SaveStrategy::Distributed;
      else if (S == "save-all")
        Opts.Strategy = AtomOptions::SaveStrategy::SaveAll;
      else if (S == "liveness")
        Opts.Strategy = AtomOptions::SaveStrategy::SiteLiveness;
      else
        die("unknown strategy '" + S + "'");
    } else if (A == "--inline") {
      Opts.InlineAnalysis = true;
    } else if (A == "--no-rename") {
      Opts.RenameAnalysisRegs = false;
    } else if (A == "--heap-offset" && I + 1 < argc) {
      Opts.AnalysisHeapOffset = strtoull(argv[++I], nullptr, 0);
    } else if ((A == "--jobs" || A == "-j") && I + 1 < argc) {
      Opts.Jobs = unsigned(strtoul(argv[++I], nullptr, 0));
    } else if (A == "--no-cache") {
      Opts.CachePipeline = false;
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--dump" && I + 1 < argc) {
      Dumps.push_back(argv[++I]);
    } else if (A == "--stats") {
      Stats = true;
    } else if (!A.empty() && A[0] == '-') {
      usage();
    } else {
      Inputs.push_back(A);
    }
  }

  if (ListTools) {
    for (const Tool &T : tools::allTools())
      std::printf("%-9s %s\n", T.Name.c_str(), T.Description.c_str());
    return 0;
  }
  if (Inputs.empty() || ToolNames.empty())
    usage();

  std::vector<const Tool *> Ts;
  for (const std::string &N : ToolNames) {
    const Tool *T = tools::findTool(N);
    if (!T)
      die("unknown tool '" + N + "' (try atom --list-tools)");
    Ts.push_back(T);
  }

  // --stats wants the per-phase timing tree, so it needs spans collected
  // even without a --metrics-out file.
  if (Stats)
    obs::Registry::global().setEnabled(true);

  // Batch mode: every (tool, program) pair, through the worker pool.
  if (Inputs.size() > 1 || Ts.size() > 1) {
    if (!Output.empty())
      die("-o requires a single input and tool; batch mode writes "
          "<input>.<tool>.atom");
    if (Run || !Dumps.empty())
      die("--run/--dump require a single input and tool");

    std::vector<obj::Executable> Apps(Inputs.size());
    {
      obs::Span S("read");
      for (size_t I = 0; I < Inputs.size(); ++I)
        Apps[I] = loadExecutable(Inputs[I]);
    }
    std::vector<const obj::Executable *> AppPtrs;
    for (const obj::Executable &App : Apps)
      AppPtrs.push_back(&App);

    DiagEngine Diags;
    std::vector<BatchResult> Results;
    bool Ok = runAtomBatch(AppPtrs, Ts, Opts, Results, Diags);

    {
      obs::Span S("write");
      for (size_t TI = 0; TI < Ts.size(); ++TI)
        for (size_t AI = 0; AI < Inputs.size(); ++AI) {
          const BatchResult &R = Results[TI * Inputs.size() + AI];
          if (!R.Ok)
            continue;
          std::string Path = Inputs[AI] + "." + Ts[TI]->Name + ".atom";
          if (!writeFile(Path, R.Prog.Exe.serialize()))
            die("cannot write '" + Path + "'");
        }
    }
    if (Stats)
      std::fprintf(stderr, "%s",
                   obs::Registry::global().timingTree().c_str());
    Metrics.write();
    if (!Ok) {
      for (const Diag &D : Diags.diags())
        std::fprintf(stderr, "atom: %s\n", D.Message.c_str());
      std::fprintf(stderr, "atom: instrumentation failed\n");
      return 1;
    }
    return 0;
  }

  const Tool *T = Ts[0];
  std::string Input = Inputs[0];
  obj::Executable App;
  {
    obs::Span S("read");
    App = loadExecutable(Input);
  }

  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, *T, Opts, Out, Diags))
    dieWithDiags("instrumentation failed", Diags);

  if (Output.empty())
    Output = Input + ".atom";
  {
    obs::Span S("write");
    if (!writeFile(Output, Out.Exe.serialize()))
      die("cannot write '" + Output + "'");
  }

  if (Stats) {
    std::fprintf(stderr,
                 "points %u\ninserted-insts %u\nwrappers %u\n"
                 "patched-procs %u\nanalysis-procs %u\nstripped-procs %u\n"
                 "save-slots %u\ntext-bytes %zu (was %zu)\n",
                 Out.Stats.Points, Out.Stats.InsertedInsts,
                 Out.Stats.Wrappers, Out.Stats.PatchedProcs,
                 Out.Stats.AnalysisProcs, Out.Stats.StrippedProcs,
                 Out.Stats.SaveSlots, Out.Exe.Text.size(),
                 App.Text.size());
    std::fprintf(stderr, "%s",
                 obs::Registry::global().timingTree().c_str());
  }

  if (!Run) {
    Metrics.write();
    return 0;
  }

  // On a trap the tool's finalization still runs (re-entry at __exit), so
  // the report dumped below covers the execution up to the fault.
  sim::Machine M(Out.Exe);
  RecoveryResult RR;
  {
    obs::Span S("run");
    RR = runWithRecovery(Out.Exe, M);
  }
  const sim::RunResult &R = RR.Result;
  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  for (const std::string &F : Dumps)
    if (M.vfs().fileExists(F))
      std::printf("--- %s ---\n%s", F.c_str(),
                  M.vfs().fileContents(F).c_str());
  Metrics.write();
  if (R.Status == sim::RunStatus::Trap) {
    std::fprintf(stderr,
                 "atom: instrumented program trapped (%s): %s\n"
                 "atom: original pc 0x%llx%s\n",
                 sim::trapKindName(R.Trap), R.FaultMessage.c_str(),
                 (unsigned long long)RR.OrigFaultPC,
                 RR.OrigFaultPC ? "" : " (inserted/analysis code)");
    return 124;
  }
  if (R.Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "atom: instrumented program did not exit: %s\n",
                 R.FaultMessage.c_str());
    return 125;
  }
  return int(R.ExitCode & 0xFF);
}
