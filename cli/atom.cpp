//===- cli/atom.cpp - The atom command ------------------------------------===//
//
// The paper's command line was
//     atom prog inst.c anal.c -o prog.atom
// where inst.c (instrumentation routines) was compiled and linked with OM
// into a custom tool. Instrumentation routines here are host C++, so this
// command exposes the built-in tool suite; custom tools use the library
// API (see examples/).
//
//   atom prog.exe --tool <name> [-o prog.atom] [options]
//   atom prog1.exe prog2.exe ... --tool t1,t2,... [options]   (batch mode)
//   atom --connect <sock> prog.exe... --tool t1,t2,... [options]
//   atom --list-tools
//
// With several inputs and/or tools, every (tool, program) pair is
// instrumented — in parallel across --jobs workers, with per-tool and
// per-program pipeline artifacts cached (docs/PIPELINE.md) — and each
// result is written to <input>.<tool>.atom.
//
// --connect routes the same requests to a running atomd daemon
// (docs/DAEMON.md) instead of instrumenting in-process: requests are
// pipelined over the socket, backpressure replies are retried, and the
// returned executables are byte-identical to local runs.
//
// Options:
//   --strategy wrapper|direct|distributed|save-all|liveness
//   --opt O0|O1|O2           optimization preset: O0 calls every probe
//                            out of line, O1 inlines straight-line leaves,
//                            O2 adds the branching inliner, guard
//                            hoisting, dead-argument elision, and
//                            site-liveness saves (docs/EXPERIMENTS.md E7)
//   --inline                 inline straight-line analysis routines
//   --inline-limit N         max body size eligible for inlining
//   --no-rename              disable analysis register renaming
//   --heap-offset N          partition the heap (paper's method 2)
//   --jobs N, -j N           batch worker threads (0 = one per core)
//   --no-cache               disable pipeline memoization in batch mode
//   --cache-bytes SZ         cap the pipeline cache (k/m/g suffixes)
//   --connect <sock>         send requests to the atomd at <sock>
//   --client <name>          client label reported to the daemon
//   --timeout-ms N           per-request deadline asked of the daemon
//                            (only meaningful with --connect)
//   --run [--dump <file>]    run the result immediately (single pair only)
//   --stats                  print instrumentation statistics and the
//                            per-phase timing tree
//   --metrics-out <file>     write metrics/spans/events document
//   --metrics-format json|prom
//   --trace-out <file>       write a Chrome trace_event JSON document of
//                            this run (in --connect mode, stitched with
//                            the daemon's and workers' spans) — loadable
//                            in Perfetto (docs/OBSERVABILITY.md)
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atom/Batch.h"
#include "atom/Recovery.h"
#include "atomd/Client.h"
#include "sim/Machine.h"
#include "tools/Tools.h"

#include <chrono>
#include <map>
#include <thread>
#include <unistd.h>

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: atom <prog.exe>... --tool <name>[,<name>...] "
               "[-o <prog.atom>]\n"
               "            [--strategy wrapper|direct|distributed|"
               "save-all|liveness]\n"
               "            [--opt O0|O1|O2] [--inline] [--inline-limit N]\n"
               "            [--no-rename] [--heap-offset N]\n"
               "            [--jobs N] [--no-cache] [--cache-bytes SZ]\n"
               "            [--connect <sock>] [--client <name>] "
               "[--timeout-ms N]\n"
               "            [--run] [--dump <file>] [--stats]\n"
               "            [--metrics-out <file>] "
               "[--metrics-format json|prom]\n"
               "            [--trace-out <file>]\n"
               "       atom --list-tools\n");
  std::exit(2);
}

/// Splits a comma-separated --tool argument ("cache,branch").
static std::vector<std::string> splitNames(const std::string &Arg) {
  std::vector<std::string> Names;
  size_t Pos = 0;
  while (Pos <= Arg.size()) {
    size_t Comma = Arg.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Arg.size();
    if (Comma > Pos)
      Names.push_back(Arg.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Names;
}

static void printStats(const InstrStats &S, size_t TextBytes,
                       size_t OrigTextBytes) {
  std::fprintf(stderr,
               "points %u\ninserted-insts %u\nwrappers %u\n"
               "patched-procs %u\nanalysis-procs %u\nstripped-procs %u\n"
               "save-slots %u\nprobe-inlined-sites %u\n"
               "probe-guarded-sites %u\nprobe-args-elided %u\n"
               "probe-consts-folded %u\ntext-bytes %zu (was %zu)\n",
               S.Points, S.InsertedInsts, S.Wrappers, S.PatchedProcs,
               S.AnalysisProcs, S.StrippedProcs, S.SaveSlots,
               S.ProbeInlinedSites, S.ProbeGuardedSites, S.ProbeArgsElided,
               S.ProbeConstsFolded, TextBytes, OrigTextBytes);
}

/// The --run tail shared by local and --connect single-pair modes.
static int runInstrumented(const obj::Executable &Exe,
                           const std::vector<std::string> &Dumps,
                           const MetricsOptions &Metrics) {
  // On a trap the tool's finalization still runs (re-entry at __exit), so
  // the report dumped below covers the execution up to the fault.
  sim::Machine M(Exe);
  RecoveryResult RR;
  {
    obs::Span S("run");
    RR = runWithRecovery(Exe, M);
  }
  const sim::RunResult &R = RR.Result;
  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  for (const std::string &F : Dumps)
    if (M.vfs().fileExists(F))
      std::printf("--- %s ---\n%s", F.c_str(),
                  M.vfs().fileContents(F).c_str());
  Metrics.write();
  if (R.Status == sim::RunStatus::Trap) {
    std::fprintf(stderr,
                 "atom: instrumented program trapped (%s): %s\n"
                 "atom: original pc 0x%llx%s\n",
                 sim::trapKindName(R.Trap), R.FaultMessage.c_str(),
                 (unsigned long long)RR.OrigFaultPC,
                 RR.OrigFaultPC ? "" : " (inserted/analysis code)");
    return 124;
  }
  if (R.Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "atom: instrumented program did not exit: %s\n",
                 R.FaultMessage.c_str());
    return 125;
  }
  return int(R.ExitCode & 0xFF);
}

/// Daemon proxy mode: every (tool, input) request is pipelined to the
/// atomd at \p Socket; backpressure replies ("queue-full", "quota") are
/// resent after a capped, jittered exponential delay floored at the
/// daemon's advice, and a request that keeps bouncing is abandoned after
/// a bounded number of attempts. Output files match local mode.
static int runConnectMode(const std::string &Socket,
                          const std::string &ClientName,
                          const std::vector<std::string> &Inputs,
                          const std::vector<const Tool *> &Ts,
                          const AtomOptions &Opts, uint64_t TimeoutMs,
                          const std::string &Output, bool Run, bool Stats,
                          const std::vector<std::string> &Dumps,
                          const MetricsOptions &Metrics,
                          const TraceOptions &Trace) {
  bool Single = Inputs.size() == 1 && Ts.size() == 1;
  if (!Output.empty() && !Single)
    die("-o requires a single input and tool; batch mode writes "
        "<input>.<tool>.atom");
  if ((Run || !Dumps.empty()) && !Single)
    die("--run/--dump require a single input and tool");

  atomd::Client Cl;
  std::string Err;
  if (!Cl.connect(Socket, Err))
    die(Err);

  struct Request {
    std::string Json;
    std::vector<uint8_t> Bin;
    std::string OutPath;
    std::string Label;     ///< "tool 'x', prog.exe" for error messages.
    unsigned Attempts = 0; ///< Backpressure resends so far.
    obs::TraceContext Ctx; ///< This request's minted trace context.
    int64_t StartUs = 0;   ///< First send, for the client "request" span.
  };
  std::map<uint64_t, Request> Pending;
  std::vector<std::string> DoneTraces; ///< For --trace-out stitching.
  for (const Tool *T : Ts)
    for (const std::string &Input : Inputs) {
      Request Rq;
      if (!readFile(Input, Rq.Bin))
        die("cannot read '" + Input + "'");
      uint64_t Id = Cl.nextId();
      // The client is the edge of the trace: it mints the id that the
      // daemon and worker spans will stitch under.
      Rq.Ctx = obs::TraceContext::mint();
      Rq.StartUs = obs::traceNowUs();
      Rq.Json = atomd::makeInstrumentRequest(Id, T->Name, ClientName, Opts,
                                             TimeoutMs, Rq.Ctx);
      Rq.OutPath = !Output.empty() ? Output
                   : Single       ? Input + ".atom"
                                  : Input + "." + T->Name + ".atom";
      Rq.Label = "tool '" + T->Name + "', " + Input;
      if (!Cl.send(Rq.Json, Rq.Bin, Err))
        die(Err);
      Pending.emplace(Id, std::move(Rq));
    }

  // One backoff state for the connection: when several pipelined requests
  // bounce, their resends still spread out instead of re-arriving as the
  // same burst that was just rejected.
  const unsigned MaxAttempts = 100;
  Backoff Retry(5, 250,
                0x9E3779B97F4A7C15ull ^ (uint64_t(getpid()) << 32));

  bool Ok = true;
  int Exit = 0;
  while (!Pending.empty()) {
    atomd::Reply R;
    atomd::Frame F;
    if (!Cl.recv(R, F, Err))
      die("lost daemon connection: " + Err);
    auto It = Pending.find(R.Id);
    if (It == Pending.end())
      die("daemon replied with unknown request id");
    Request &Rq = It->second;
    if (R.Retry) {
      if (Rq.Attempts >= MaxAttempts)
        die("daemon kept pushing back (" + R.Error + ") after " +
            formatString("%u", Rq.Attempts + 1) + " attempts: " + Rq.Label);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          Retry.delayMs(Rq.Attempts++, R.RetryAfterMs)));
      if (!Cl.send(Rq.Json, Rq.Bin, Err))
        die(Err);
      continue;
    }
    // The request is settled: close the client's hop of the trace.
    obs::FlightRecorder::global().recordSpan(
        Rq.Ctx, "request", Rq.StartUs,
        uint64_t(obs::traceNowUs() - Rq.StartUs));
    DoneTraces.push_back(Rq.Ctx.traceIdHex());
    if (!R.Ok) {
      for (const Diag &D : R.Diags)
        std::fprintf(stderr, "atom: %s: line %d: %s\n", Rq.Label.c_str(),
                     D.Line, D.Message.c_str());
      std::fprintf(stderr, "atom: %s: %s\n", Rq.Label.c_str(),
                   R.Error.c_str());
      if (!R.TraceId.empty())
        std::fprintf(stderr, "atom: %s: trace %s\n", Rq.Label.c_str(),
                     R.TraceId.c_str());
      if (!R.Postmortem.empty())
        std::fprintf(stderr, "atom: %s: postmortem %s\n", Rq.Label.c_str(),
                     R.Postmortem.c_str());
      Ok = false;
      Pending.erase(It);
      continue;
    }
    if (!writeFile(Rq.OutPath, F.Bin))
      die("cannot write '" + Rq.OutPath + "'");
    if (Single) {
      if (Stats) {
        obj::Executable Exe, Orig;
        if (obj::Executable::deserialize(F.Bin, Exe) &&
            obj::Executable::deserialize(Rq.Bin, Orig))
          printStats(R.Stats, Exe.Text.size(), Orig.Text.size());
      }
      if (Run) {
        obj::Executable Exe;
        if (!obj::Executable::deserialize(F.Bin, Exe))
          die("daemon returned a malformed executable");
        Exit = runInstrumented(Exe, Dumps, Metrics);
      }
    }
    Pending.erase(It);
  }
  if (!Trace.OutPath.empty()) {
    // Stitch: this process's records plus each request's daemon-side
    // trace document (which already folds in the worker's hop).
    std::vector<obs::TraceRecordRow> Rows = obs::rowsFromRecords(
        obs::FlightRecorder::global().snapshot(), "client");
    for (const std::string &IdHex : DoneTraces) {
      obs::JsonWriter W;
      W.beginObject();
      W.key("op");
      W.value("trace");
      W.key("id");
      W.value(Cl.nextId());
      W.key("trace");
      W.value(IdHex);
      W.endObject();
      atomd::Reply R;
      atomd::Frame F;
      if (!Cl.call(W.take(), {}, R, F, Err) || !R.Ok)
        continue; // trace fell off the daemon's bounded index
      if (const obs::json::Value *T = R.Doc.find("trace"))
        if (const obs::json::Value *Recs = T->find("records"))
          for (const obs::json::Value &RV : Recs->Items) {
            obs::TraceRecordRow Row;
            if (obs::parseTraceRow(RV, Row))
              Rows.push_back(std::move(Row));
          }
    }
    Trace.write(Rows);
  }
  if (!Single || !Run)
    Metrics.write();
  if (!Ok) {
    std::fprintf(stderr, "atom: instrumentation failed\n");
    return 1;
  }
  return Exit;
}

int main(int argc, char **argv) {
  std::string Output, ConnectSocket, ClientName = "atom";
  std::vector<std::string> Inputs, ToolNames;
  std::vector<std::string> Dumps;
  AtomOptions Opts;
  MetricsOptions Metrics;
  TraceOptions Trace;
  uint64_t TimeoutMs = 0;
  bool Run = false, Stats = false, ListTools = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (Metrics.consume(argc, argv, I) || Trace.consume(argc, argv, I)) {
      continue;
    } else if (A == "--list-tools") {
      ListTools = true;
    } else if (A == "--tool" && I + 1 < argc) {
      for (const std::string &N : splitNames(argv[++I]))
        ToolNames.push_back(N);
    } else if (A == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (A == "--strategy" && I + 1 < argc) {
      std::string S = argv[++I];
      if (!atomd::parseSaveStrategy(S, Opts.Strategy))
        die("unknown strategy '" + S + "'");
    } else if (A == "--opt" && I + 1 < argc) {
      std::string P = argv[++I];
      if (!parseOptPreset(P, Opts.Opt))
        die("unknown opt preset '" + P + "' (valid: O0, O1, O2)");
    } else if (A.rfind("--opt=", 0) == 0) {
      std::string P = A.substr(6);
      if (!parseOptPreset(P, Opts.Opt))
        die("unknown opt preset '" + P + "' (valid: O0, O1, O2)");
    } else if (A == "--inline") {
      Opts.InlineAnalysis = true;
    } else if (A == "--inline-limit" && I + 1 < argc) {
      Opts.InlineLimit = unsigned(parseUnsignedArg("--inline-limit",
                                                   argv[++I]));
    } else if (A == "--no-rename") {
      Opts.RenameAnalysisRegs = false;
    } else if (A == "--heap-offset" && I + 1 < argc) {
      Opts.AnalysisHeapOffset = parseUnsignedArg("--heap-offset", argv[++I]);
    } else if ((A == "--jobs" || A == "-j") && I + 1 < argc) {
      Opts.Jobs = unsigned(parseUnsignedArg(A, argv[++I]));
    } else if (A == "--no-cache") {
      Opts.CachePipeline = false;
    } else if (A == "--cache-bytes" && I + 1 < argc) {
      Opts.CacheBytes = parseByteSizeArg("--cache-bytes", argv[++I]);
    } else if (A == "--connect" && I + 1 < argc) {
      ConnectSocket = argv[++I];
    } else if (A == "--client" && I + 1 < argc) {
      ClientName = argv[++I];
    } else if (A == "--timeout-ms" && I + 1 < argc) {
      TimeoutMs = parseUnsignedArg("--timeout-ms", argv[++I]);
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--dump" && I + 1 < argc) {
      Dumps.push_back(argv[++I]);
    } else if (A == "--stats") {
      Stats = true;
    } else if (!A.empty() && A[0] == '-') {
      usage();
    } else {
      Inputs.push_back(A);
    }
  }

  if (ListTools) {
    for (const Tool &T : tools::allTools())
      std::printf("%-9s %s\n", T.Name.c_str(), T.Description.c_str());
    return 0;
  }
  if (Inputs.empty() || ToolNames.empty())
    usage();

  std::vector<const Tool *> Ts;
  for (const std::string &N : ToolNames) {
    const Tool *T = tools::findTool(N);
    if (!T)
      die("unknown tool '" + N + "' (try atom --list-tools)");
    Ts.push_back(T);
  }

  // --stats wants the per-phase timing tree, so it needs spans collected
  // even without a --metrics-out file.
  if (Stats)
    obs::Registry::global().setEnabled(true);

  if (!ConnectSocket.empty())
    return runConnectMode(ConnectSocket, ClientName, Inputs, Ts, Opts,
                          TimeoutMs, Output, Run, Stats, Dumps, Metrics,
                          Trace);

  // Batch mode: every (tool, program) pair, through the worker pool.
  if (Inputs.size() > 1 || Ts.size() > 1) {
    if (!Output.empty())
      die("-o requires a single input and tool; batch mode writes "
          "<input>.<tool>.atom");
    if (Run || !Dumps.empty())
      die("--run/--dump require a single input and tool");

    std::vector<obj::Executable> Apps(Inputs.size());
    {
      obs::Span S("read");
      for (size_t I = 0; I < Inputs.size(); ++I)
        Apps[I] = loadExecutable(Inputs[I]);
    }
    std::vector<const obj::Executable *> AppPtrs;
    for (const obj::Executable &App : Apps)
      AppPtrs.push_back(&App);

    DiagEngine Diags;
    std::vector<BatchResult> Results;
    bool Ok = runAtomBatch(AppPtrs, Ts, Opts, Results, Diags);

    {
      obs::Span S("write");
      for (size_t TI = 0; TI < Ts.size(); ++TI)
        for (size_t AI = 0; AI < Inputs.size(); ++AI) {
          const BatchResult &R = Results[TI * Inputs.size() + AI];
          if (!R.Ok)
            continue;
          std::string Path = Inputs[AI] + "." + Ts[TI]->Name + ".atom";
          if (!writeFile(Path, R.Prog.Exe.serialize()))
            die("cannot write '" + Path + "'");
        }
    }
    if (Stats)
      std::fprintf(stderr, "%s",
                   obs::Registry::global().timingTree().c_str());
    Metrics.write();
    Trace.writeOwnRing("atom");
    if (!Ok) {
      for (const Diag &D : Diags.diags())
        std::fprintf(stderr, "atom: %s\n", D.Message.c_str());
      std::fprintf(stderr, "atom: instrumentation failed\n");
      return 1;
    }
    return 0;
  }

  const Tool *T = Ts[0];
  std::string Input = Inputs[0];
  // Local single-pair runs trace too: one minted context scopes the whole
  // read/instrument/write sequence, so --trace-out has a tree to show.
  obs::TraceScope Scope(obs::TraceContext::mint());
  obj::Executable App;
  {
    obs::Span S("read");
    App = loadExecutable(Input);
  }

  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, *T, Opts, Out, Diags))
    dieWithDiags("instrumentation failed", Diags);

  if (Output.empty())
    Output = Input + ".atom";
  {
    obs::Span S("write");
    if (!writeFile(Output, Out.Exe.serialize()))
      die("cannot write '" + Output + "'");
  }

  if (Stats) {
    printStats(Out.Stats, Out.Exe.Text.size(), App.Text.size());
    std::fprintf(stderr, "%s",
                 obs::Registry::global().timingTree().c_str());
  }

  if (!Run) {
    Metrics.write();
    Trace.writeOwnRing("atom");
    return 0;
  }
  int Exit = runInstrumented(Out.Exe, Dumps, Metrics);
  Trace.writeOwnRing("atom");
  return Exit;
}
