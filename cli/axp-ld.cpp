//===- cli/axp-ld.cpp - Linker driver --------------------------------------===//
//
//   axp-ld a.obj b.obj ... [-o a.exe] [--no-runtime] [-r merged.obj]
//
// Links object modules (plus the runtime library unless --no-runtime) into
// an executable, or merges them relocatably with -r.
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "link/Linker.h"
#include "runtime/Runtime.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr, "usage: axp-ld <obj>... [-o <exe>] [--no-runtime]\n"
                       "       axp-ld <obj>... -r <merged.obj>\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::vector<std::string> Inputs;
  std::string Output = "a.exe";
  std::string RelocOutput;
  bool WithRuntime = true;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-o" && I + 1 < argc)
      Output = argv[++I];
    else if (A == "-r" && I + 1 < argc)
      RelocOutput = argv[++I];
    else if (A == "--no-runtime")
      WithRuntime = false;
    else if (!A.empty() && A[0] == '-')
      usage();
    else
      Inputs.push_back(A);
  }
  if (Inputs.empty())
    usage();

  std::vector<obj::ObjectModule> Modules;
  for (const std::string &Path : Inputs)
    Modules.push_back(loadObject(Path));

  DiagEngine Diags;
  if (!RelocOutput.empty()) {
    obj::ObjectModule Merged;
    if (!link::linkRelocatable(Modules, RelocOutput, Merged, Diags,
                               /*RequireResolved=*/false))
      dieWithDiags("relocatable link failed", Diags);
    if (!writeFile(RelocOutput, Merged.serialize()))
      die("cannot write '" + RelocOutput + "'");
    return 0;
  }

  if (WithRuntime) {
    if (!runtime::image().Ok)
      die(runtime::image().Error);
    for (const obj::ObjectModule &M : runtime::modules())
      Modules.push_back(M);
  }

  obj::Executable Exe;
  if (!link::linkExecutable(Modules, Exe, Diags))
    dieWithDiags("link failed", Diags);
  if (!writeFile(Output, Exe.serialize()))
    die("cannot write '" + Output + "'");
  return 0;
}
