//===- cli/axp-cc.cpp - Mini-C compiler driver ----------------------------===//
//
//   axp-cc file.mc [-o file.obj] [-S]
//
// Compiles mini-C to an AXP64-lite object module (-S prints the generated
// assembly instead).
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "mcc/Compiler.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr, "usage: axp-cc <file.mc> [-o <file.obj>] [-S]\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input, Output;
  bool EmitAsm = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-o" && I + 1 < argc)
      Output = argv[++I];
    else if (A == "-S")
      EmitAsm = true;
    else if (A == "-h" || A == "--help")
      usage();
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();

  std::string Source;
  if (!readTextFile(Input, Source))
    die("cannot read '" + Input + "'");

  std::string ModuleName = Input;
  size_t Slash = ModuleName.find_last_of('/');
  if (Slash != std::string::npos)
    ModuleName = ModuleName.substr(Slash + 1);

  DiagEngine Diags;
  if (EmitAsm) {
    std::string Asm;
    if (!mcc::compileToAsm(Source, ModuleName, Asm, Diags))
      dieWithDiags("compilation of '" + Input + "' failed", Diags);
    std::fputs(Asm.c_str(), stdout);
    return 0;
  }

  obj::ObjectModule M;
  if (!mcc::compile(Source, ModuleName, M, Diags))
    dieWithDiags("compilation of '" + Input + "' failed", Diags);

  if (Output.empty()) {
    Output = Input;
    if (endsWith(Output, ".mc"))
      Output.resize(Output.size() - 3);
    Output += ".obj";
  }
  if (!writeFile(Output, M.serialize()))
    die("cannot write '" + Output + "'");
  return 0;
}
