//===- cli/axp-trace.cpp - Record, inspect, and replay ATF traces ---------===//
//
//   axp-trace record <prog.exe> -o <trace.atf> [--tool] [--full]
//   axp-trace stat   <trace.atf>
//   axp-trace dump   <trace.atf> [--limit N]
//   axp-trace replay <cache|branch> <trace.atf>
//
// record runs the executable on the simulator with an ATF sink attached
// (or, with --tool, instruments it with the `trace` ATOM tool and converts
// the recorded raw stream); --full keeps recording past __exit instead of
// stopping at the measurement-window boundary. replay feeds the trace to
// an offline analyzer and prints the same report the live tool writes.
// stat decodes the payload to print a histogram of encoded record sizes
// next to the header-derived figures.
//
// Every subcommand accepts --metrics-out <file> / --metrics-format
// json|prom to dump the run's metrics document (docs/OBSERVABILITY.md).
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "trace/Replay.h"
#include "trace/TraceSink.h"
#include "trace/TraceTool.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: axp-trace record <prog.exe> -o <trace.atf>"
               " [--tool] [--full]\n"
               "       axp-trace stat   <trace.atf>\n"
               "       axp-trace dump   <trace.atf> [--limit N]\n"
               "       axp-trace replay <cache|branch> <trace.atf>\n"
               "  all: [--metrics-out <file>]"
               " [--metrics-format json|prom]\n");
  std::exit(2);
}

// Shared by every subcommand; main() strips the flags before dispatch.
static MetricsOptions Metrics;

static trace::AtfReader openOrDie(const std::vector<uint8_t> &Bytes,
                                  const std::string &Path) {
  trace::AtfReader R;
  if (R.open(Bytes) != trace::AtfReader::Error::None)
    die("'" + Path + "': " + trace::AtfReader::errorString(R.error()));
  return R;
}

static int cmdRecord(const std::vector<std::string> &Args) {
  std::string Input, Output;
  bool ViaTool = false, FullRun = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "-o" && I + 1 < Args.size())
      Output = Args[++I];
    else if (A == "--tool")
      ViaTool = true;
    else if (A == "--full")
      FullRun = true;
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty() || Output.empty() || (ViaTool && FullRun))
    usage();

  obj::Executable App = loadExecutable(Input);
  DiagEngine Diags;
  std::vector<uint8_t> Atf;
  sim::RunResult Run;
  bool Ok = ViaTool
                ? trace::recordTraceViaTool(App, trace::ToolRecordOptions(),
                                            Atf, Run, Diags)
                : trace::recordTrace(App, FullRun, Atf, Run, Diags);
  if (!Ok)
    dieWithDiags("recording failed", Diags);
  if (!writeFile(Output, Atf))
    die("cannot write '" + Output + "'");

  trace::AtfReader R = openOrDie(Atf, Output);
  std::fprintf(stderr, "axp-trace: %llu events, %llu blocks, %llu bytes\n",
               (unsigned long long)R.stat().EventCount,
               (unsigned long long)R.stat().BlockCount,
               (unsigned long long)R.stat().FileBytes);
  if (Run.Status == sim::RunStatus::Trap)
    std::fprintf(stderr,
                 "axp-trace: traced program trapped (%s) at pc 0x%llx;"
                 " trace is truncated\n",
                 sim::trapKindName(Run.Trap),
                 (unsigned long long)Run.FaultPC);

  obs::Registry &Reg = obs::Registry::global();
  Reg.addCounter("trace.events", R.stat().EventCount);
  Reg.addCounter("trace.blocks", R.stat().BlockCount);
  Reg.addCounter("trace.file-bytes", R.stat().FileBytes);
  Metrics.write();
  return 0;
}

static int cmdStat(const std::vector<std::string> &Args) {
  if (Args.size() != 1)
    usage();
  std::vector<uint8_t> Bytes;
  if (!readFile(Args[0], Bytes))
    die("cannot read '" + Args[0] + "'");
  trace::AtfReader R = openOrDie(Bytes, Args[0]);
  const trace::AtfStat &S = R.stat();
  std::printf("version %u\ntruncated %s\nevents %llu\nblocks %llu\n"
              "payload-bytes %llu\nfile-bytes %llu\n"
              "static-cond-branches %llu\n",
              unsigned(S.Version), S.Truncated ? "yes" : "no",
              (unsigned long long)S.EventCount,
              (unsigned long long)S.BlockCount,
              (unsigned long long)S.PayloadBytes,
              (unsigned long long)S.FileBytes,
              (unsigned long long)S.StaticCondBranches);
  for (unsigned K = 0; K < trace::NumEventKinds; ++K)
    std::printf("%s %llu\n", trace::eventKindName(trace::EventKind(K)),
                (unsigned long long)S.KindCounts[K]);
  if (S.EventCount)
    std::printf("bytes-per-event %.3f\n",
                double(S.PayloadBytes) / double(S.EventCount));

  // Encoded-size distribution: decode the payload once, bucketing each
  // record's tag+varint byte count.
  obs::Histogram Sizes;
  obs::Registry &Reg = obs::Registry::global();
  bool Ok = R.forEachSized([&](const trace::Event &E, uint32_t Bytes) {
    Sizes.record(Bytes);
    Reg.recordValue("trace.record-bytes", Bytes);
    Reg.addCounter(std::string("trace.kind.") + trace::eventKindName(E.Kind));
    return true;
  });
  if (!Ok)
    die("'" + Args[0] + "': " + trace::AtfReader::errorString(R.error()));
  std::printf("record-size histogram (bytes):\n%s",
              Sizes.render("B").c_str());
  Metrics.write();
  return 0;
}

static int cmdDump(const std::vector<std::string> &Args) {
  std::string Input;
  uint64_t Limit = ~0ULL;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "--limit" && I + 1 < Args.size())
      Limit = strtoull(Args[++I].c_str(), nullptr, 0);
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();
  std::vector<uint8_t> Bytes;
  if (!readFile(Input, Bytes))
    die("cannot read '" + Input + "'");
  trace::AtfReader R = openOrDie(Bytes, Input);
  uint64_t N = 0;
  bool Ok = R.forEach([&](const trace::Event &E) {
    if (N >= Limit)
      return false;
    ++N;
    std::printf("0x%08llx %s", (unsigned long long)E.PC,
                trace::eventKindName(E.Kind));
    switch (E.Kind) {
    case trace::EventKind::Load:
    case trace::EventKind::Store:
      std::printf(" addr=0x%llx size=%u", (unsigned long long)E.Addr,
                  unsigned(E.Size));
      break;
    case trace::EventKind::CondBranch:
      std::printf(" %s", E.Taken ? "taken" : "not-taken");
      break;
    case trace::EventKind::Call:
      if (E.Target)
        std::printf(" target=0x%llx", (unsigned long long)E.Target);
      break;
    case trace::EventKind::Syscall:
      std::printf(" no=%llu", (unsigned long long)E.Sysno);
      break;
    default:
      break;
    }
    std::printf("\n");
    return true;
  });
  if (!Ok)
    die("'" + Input + "': " + trace::AtfReader::errorString(R.error()));
  Metrics.write();
  return 0;
}

static int cmdReplay(const std::vector<std::string> &Args) {
  if (Args.size() != 2)
    usage();
  const std::string &Model = Args[0];
  std::vector<uint8_t> Bytes;
  if (!readFile(Args[1], Bytes))
    die("cannot read '" + Args[1] + "'");
  trace::AtfReader R = openOrDie(Bytes, Args[1]);
  std::string Report;
  bool Ok = false;
  if (Model == "cache") {
    trace::CacheReplayResult Res;
    Ok = trace::replayCache(R, Res);
    Report = Res.report();
  } else if (Model == "branch") {
    trace::BranchReplayResult Res;
    Ok = trace::replayBranch(R, Res);
    Report = Res.report();
  } else {
    usage();
  }
  if (!Ok)
    die("'" + Args[1] + "': " + trace::AtfReader::errorString(R.error()));
  std::fputs(Report.c_str(), stdout);
  Metrics.write();
  return 0;
}

int main(int argc, char **argv) {
  if (argc < 2)
    usage();
  std::string Cmd = argv[1];
  // Strip the global metrics flags before subcommand dispatch so the
  // subcommands' strict argument checks don't see them.
  std::vector<std::string> Raw(argv + 2, argv + argc), Args;
  for (size_t I = 0; I < Raw.size(); ++I)
    if (!Metrics.consume(Raw, I))
      Args.push_back(Raw[I]);
  if (Cmd == "record")
    return cmdRecord(Args);
  if (Cmd == "stat")
    return cmdStat(Args);
  if (Cmd == "dump")
    return cmdDump(Args);
  if (Cmd == "replay")
    return cmdReplay(Args);
  usage();
}
