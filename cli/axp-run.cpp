//===- cli/axp-run.cpp - Run an executable on the simulator ---------------===//
//
//   axp-run prog.exe [--stats] [--dump <file>] [--fuel N] [--trace]
//           [--inject kind@icount[,seed]] [--no-protect] [--no-recover]
//           [--strict-align] [--no-dbt] [--dbt-threshold N]
//           [--profile <file>] [--json-diag]
//           [--metrics-out <file>] [--metrics-format json|prom]
//
// Runs the executable; the program's stdout is forwarded. --dump prints a
// file from the simulated file system after the run (how you read a tool's
// report). --trace disassembles every retired instruction to stderr.
// --inject arms a deterministic fault injector (repeatable; see
// docs/FAULTS.md for the grammar). --profile collects a per-basic-block
// hotness profile and writes the report — addresses translated back to the
// original, uninstrumented program — to a host file. --json-diag prints
// trap diagnostics as a single JSON object on stderr, for harnesses that
// would otherwise scrape the human-readable lines.
//
// Exit codes (documented in docs/FAULTS.md):
//   0-255  the program's own exit code
//   124    the program trapped (trap kind + fault PC printed to stderr)
//   125    the instruction budget (--fuel) was exhausted
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atom/Recovery.h"
#include "sim/Inject.h"
#include "sim/Machine.h"
#include "sim/dbt/Dbt.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: axp-run <prog.exe> [--stats] [--dump <file>]"
               " [--fuel N] [--trace]\n"
               "               [--inject kind@icount[,seed]] [--no-protect]"
               " [--no-recover]\n"
               "               [--strict-align] [--no-dbt]"
               " [--dbt-threshold N]\n"
               "               [--profile <file>]"
               " [--json-diag]\n"
               "               [--metrics-out <file>]"
               " [--metrics-format json|prom]\n"
               "  --inject kinds: regbit membit decode io\n"
               "  exit codes: program's own (0-255), 124 trap,"
               " 125 fuel exhausted\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input, ProfilePath;
  std::vector<std::string> Dumps;
  std::vector<sim::InjectSpec> Injections;
  MetricsOptions Metrics;
  bool Stats = false, Trace = false, Recover = true, JsonDiag = false;
  sim::MachineOptions Opts;
  uint64_t Fuel = 2'000'000'000;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (Metrics.consume(argc, argv, I))
      continue;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--trace")
      Trace = true;
    else if (A == "--json-diag")
      JsonDiag = true;
    else if (A == "--no-protect")
      Opts.MemoryProtection = false;
    else if (A == "--no-recover")
      Recover = false;
    else if (A == "--strict-align")
      Opts.StrictAlignment = true;
    else if (A == "--no-dbt")
      Opts.EnableDbt = false;
    else if (A == "--dbt-threshold" && I + 1 < argc)
      Opts.DbtThreshold =
          uint32_t(parseUnsignedArg("--dbt-threshold", argv[++I]));
    else if (A.rfind("--dbt-threshold=", 0) == 0)
      Opts.DbtThreshold = uint32_t(parseUnsignedArg(
          "--dbt-threshold", A.substr(std::string("--dbt-threshold=").size())));
    else if (A == "--profile" && I + 1 < argc)
      ProfilePath = argv[++I];
    else if (A.rfind("--profile=", 0) == 0)
      ProfilePath = A.substr(std::string("--profile=").size());
    else if (A == "--inject" && I + 1 < argc) {
      sim::InjectSpec Spec;
      std::string Err;
      if (!sim::parseInjectSpec(argv[++I], Spec, Err))
        die("--inject: " + Err);
      Injections.push_back(Spec);
    } else if (A == "--dump" && I + 1 < argc)
      Dumps.push_back(argv[++I]);
    else if (A == "--fuel" && I + 1 < argc)
      Fuel = strtoull(argv[++I], nullptr, 0);
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();

  obj::Executable Exe = loadExecutable(Input);
  sim::Machine M(Exe, Opts);
  if (Trace)
    M.setTraceHook([](const sim::TraceEvent &E) {
      std::fprintf(stderr, "0x%08llx: %s\n", (unsigned long long)E.PC,
                   isa::disassemble(E.I, E.PC).c_str());
    });
  if (!ProfilePath.empty())
    M.enableBlockProfile();
  sim::armInjections(Injections, M);

  // For instrumented executables, a trap still runs the tool's registered
  // finalization (re-entry at __exit) so the analysis report survives the
  // crash — unless --no-recover asks for the bare trap.
  RecoveryResult RR;
  {
    obs::Span S("run");
    if (Recover)
      RR = runWithRecovery(Exe, M, Fuel);
    else
      RR.Result = M.run(Fuel);
  }
  const sim::RunResult &R = RR.Result;

  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  std::fputs(M.vfs().stderrText().c_str(), stderr);

  for (const std::string &F : Dumps) {
    if (!M.vfs().fileExists(F)) {
      std::fprintf(stderr, "axp-run: no file '%s' in the VFS\n", F.c_str());
      continue;
    }
    std::printf("--- %s ---\n%s", F.c_str(),
                M.vfs().fileContents(F).c_str());
  }

  if (!ProfilePath.empty()) {
    std::string Report = hotProfileReport(Exe, M);
    std::ofstream ProfOut(ProfilePath, std::ios::binary);
    if (!ProfOut)
      die("cannot write '" + ProfilePath + "'");
    ProfOut << Report;
  }

  const sim::Stats &S = M.stats();
  if (Stats)
    std::fprintf(stderr,
                 "instructions %llu\nloads %llu\nstores %llu\n"
                 "cond-branches %llu\ntaken %llu\ncalls %llu\n"
                 "syscalls %llu\nunaligned %llu\n",
                 (unsigned long long)S.Instructions,
                 (unsigned long long)S.Loads,
                 (unsigned long long)S.Stores,
                 (unsigned long long)S.CondBranches,
                 (unsigned long long)S.TakenBranches,
                 (unsigned long long)S.Calls,
                 (unsigned long long)S.Syscalls,
                 (unsigned long long)S.UnalignedAccesses);

  obs::Registry &Reg = obs::Registry::global();
  Reg.addCounter("sim.instructions", S.Instructions);
  Reg.addCounter("sim.loads", S.Loads);
  Reg.addCounter("sim.stores", S.Stores);
  Reg.addCounter("sim.cond-branches", S.CondBranches);
  Reg.addCounter("sim.taken-branches", S.TakenBranches);
  Reg.addCounter("sim.calls", S.Calls);
  Reg.addCounter("sim.returns", S.Returns);
  Reg.addCounter("sim.syscalls", S.Syscalls);
  Reg.addCounter("sim.unaligned", S.UnalignedAccesses);
  const sim::Memory::Perf &MP = M.memory().perf();
  Reg.addCounter("sim.trans-hits", MP.TransHits);
  Reg.addCounter("sim.trans-misses", MP.TransMisses);
  Reg.addCounter("sim.trans-fills", MP.TransFills);
  Reg.addCounter("sim.trans-invalidations", MP.TransInvalidations);
  Reg.addCounter("sim.trans-ranged-invalidations",
                 MP.TransRangedInvalidations);
  Reg.addCounter("sim.bulk-spans", MP.BulkSpans);
  Reg.addCounter("sim.bulk-bytes", MP.BulkBytes);
  Reg.addCounter("sim.fast-loop-entries", M.loopPerf().FastEntries);
  Reg.addCounter("sim.slow-loop-entries", M.loopPerf().SlowEntries);
  if (const sim::dbt::DbtPerf *DP = M.dbtPerf()) {
    Reg.addCounter("sim.dbt-blocks-translated", DP->BlocksTranslated);
    Reg.addCounter("sim.dbt-cache-bytes", DP->CacheBytes);
    Reg.addCounter("sim.dbt-chain-links", DP->ChainLinks);
    Reg.addCounter("sim.dbt-interp-fallbacks", DP->InterpFallbacks);
    Reg.addCounter("sim.dbt-side-exits", DP->SideExits);
    Reg.addCounter("sim.dbt-tlb-fills", DP->TlbFills);
    Reg.addCounter("sim.dbt-slow-mem-ops", DP->SlowMemOps);
    Reg.addCounter("sim.dbt-invalidations", DP->Invalidations);
    Reg.addCounter("sim.dbt-cache-flushes", DP->CacheFlushes);
  }
  for (const auto &[PC, Count] : M.blockProfile()) {
    (void)PC;
    Reg.recordValue("sim.block-hotness", Count);
  }
  Metrics.write();

  int ExitCode = 1;
  switch (R.Status) {
  case sim::RunStatus::Exited:
    return int(R.ExitCode & 0xFF);
  case sim::RunStatus::Halted:
    std::fprintf(stderr, "axp-run: program halted\n");
    return 0;
  case sim::RunStatus::Trap:
    if (JsonDiag) {
      // One machine-readable object on stderr; the human-readable lines
      // are suppressed so harnesses see exactly one diagnostic.
      obs::Event Diag("trap-diag");
      Diag.str("kind", sim::trapKindName(R.Trap))
          .num("pc", R.FaultPC)
          .num("addr", R.FaultAddr)
          .str("message", R.FaultMessage)
          .num("exit-code", 124);
      if (isInstrumented(Exe))
        Diag.num("original-pc", RR.OrigFaultPC)
            .boolean("recovered", RR.Recovered);
      std::fprintf(stderr, "%s\n", Diag.jsonLine().c_str());
      return 124;
    }
    std::fprintf(stderr, "axp-run: trap (%s) at pc 0x%llx: %s\n",
                 sim::trapKindName(R.Trap), (unsigned long long)R.FaultPC,
                 R.FaultMessage.c_str());
    if (R.Trap == sim::TrapKind::UnmappedAccess ||
        R.Trap == sim::TrapKind::WriteProtected ||
        R.Trap == sim::TrapKind::StackGuard ||
        R.Trap == sim::TrapKind::Unaligned)
      std::fprintf(stderr, "axp-run: faulting address 0x%llx\n",
                   (unsigned long long)R.FaultAddr);
    if (isInstrumented(Exe)) {
      std::fprintf(stderr, "axp-run: original pc 0x%llx%s\n",
                   (unsigned long long)RR.OrigFaultPC,
                   RR.OrigFaultPC ? "" : " (inserted/analysis code)");
      if (RR.Recovered)
        std::fprintf(stderr,
                     "axp-run: analysis finalization ran despite the trap\n");
    }
    return 124;
  case sim::RunStatus::FuelExhausted:
    std::fprintf(stderr, "axp-run: instruction budget exhausted\n");
    return 125;
  }
  return ExitCode;
}
