//===- cli/axp-run.cpp - Run an executable on the simulator ---------------===//
//
//   axp-run prog.exe [--stats] [--dump <file>] [--fuel N] [--trace]
//
// Runs the executable; the program's stdout is forwarded. --dump prints a
// file from the simulated file system after the run (how you read a tool's
// report). --trace disassembles every retired instruction to stderr.
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "sim/Machine.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr, "usage: axp-run <prog.exe> [--stats] [--dump <file>]"
                       " [--fuel N] [--trace]\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input;
  std::vector<std::string> Dumps;
  bool Stats = false, Trace = false;
  uint64_t Fuel = 2'000'000'000;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stats")
      Stats = true;
    else if (A == "--trace")
      Trace = true;
    else if (A == "--dump" && I + 1 < argc)
      Dumps.push_back(argv[++I]);
    else if (A == "--fuel" && I + 1 < argc)
      Fuel = strtoull(argv[++I], nullptr, 0);
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();

  obj::Executable Exe = loadExecutable(Input);
  sim::Machine M(Exe);
  if (Trace)
    M.setTraceHook([](const sim::TraceEvent &E) {
      std::fprintf(stderr, "0x%08llx: %s\n", (unsigned long long)E.PC,
                   isa::disassemble(E.I, E.PC).c_str());
    });

  sim::RunResult R = M.run(Fuel);
  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  std::fputs(M.vfs().stderrText().c_str(), stderr);

  for (const std::string &F : Dumps) {
    if (!M.vfs().fileExists(F)) {
      std::fprintf(stderr, "axp-run: no file '%s' in the VFS\n", F.c_str());
      continue;
    }
    std::printf("--- %s ---\n%s", F.c_str(),
                M.vfs().fileContents(F).c_str());
  }

  if (Stats) {
    const sim::Stats &S = M.stats();
    std::fprintf(stderr,
                 "instructions %llu\nloads %llu\nstores %llu\n"
                 "cond-branches %llu\ntaken %llu\ncalls %llu\n"
                 "syscalls %llu\nunaligned %llu\n",
                 (unsigned long long)S.Instructions,
                 (unsigned long long)S.Loads,
                 (unsigned long long)S.Stores,
                 (unsigned long long)S.CondBranches,
                 (unsigned long long)S.TakenBranches,
                 (unsigned long long)S.Calls,
                 (unsigned long long)S.Syscalls,
                 (unsigned long long)S.UnalignedAccesses);
  }

  switch (R.Status) {
  case sim::RunStatus::Exited:
    return int(R.ExitCode & 0xFF);
  case sim::RunStatus::Halted:
    std::fprintf(stderr, "axp-run: program halted\n");
    return 0;
  case sim::RunStatus::Fault:
    std::fprintf(stderr, "axp-run: fault at 0x%llx: %s\n",
                 (unsigned long long)R.FaultPC, R.FaultMessage.c_str());
    return 128;
  case sim::RunStatus::FuelExhausted:
    std::fprintf(stderr, "axp-run: instruction budget exhausted\n");
    return 127;
  }
  return 1;
}
