//===- cli/axp-run.cpp - Run an executable on the simulator ---------------===//
//
//   axp-run prog.exe [--stats] [--dump <file>] [--fuel N] [--trace]
//           [--inject kind@icount[,seed]] [--no-protect] [--no-recover]
//           [--strict-align]
//
// Runs the executable; the program's stdout is forwarded. --dump prints a
// file from the simulated file system after the run (how you read a tool's
// report). --trace disassembles every retired instruction to stderr.
// --inject arms a deterministic fault injector (repeatable; see
// docs/FAULTS.md for the grammar).
//
// Exit codes (documented in docs/FAULTS.md):
//   0-255  the program's own exit code
//   124    the program trapped (trap kind + fault PC printed to stderr)
//   125    the instruction budget (--fuel) was exhausted
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atom/Recovery.h"
#include "sim/Inject.h"
#include "sim/Machine.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: axp-run <prog.exe> [--stats] [--dump <file>]"
               " [--fuel N] [--trace]\n"
               "               [--inject kind@icount[,seed]] [--no-protect]"
               " [--no-recover]\n"
               "               [--strict-align]\n"
               "  --inject kinds: regbit membit decode io\n"
               "  exit codes: program's own (0-255), 124 trap,"
               " 125 fuel exhausted\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input;
  std::vector<std::string> Dumps;
  std::vector<sim::InjectSpec> Injections;
  bool Stats = false, Trace = false, Recover = true;
  sim::MachineOptions Opts;
  uint64_t Fuel = 2'000'000'000;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stats")
      Stats = true;
    else if (A == "--trace")
      Trace = true;
    else if (A == "--no-protect")
      Opts.MemoryProtection = false;
    else if (A == "--no-recover")
      Recover = false;
    else if (A == "--strict-align")
      Opts.StrictAlignment = true;
    else if (A == "--inject" && I + 1 < argc) {
      sim::InjectSpec Spec;
      std::string Err;
      if (!sim::parseInjectSpec(argv[++I], Spec, Err))
        die("--inject: " + Err);
      Injections.push_back(Spec);
    } else if (A == "--dump" && I + 1 < argc)
      Dumps.push_back(argv[++I]);
    else if (A == "--fuel" && I + 1 < argc)
      Fuel = strtoull(argv[++I], nullptr, 0);
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();

  obj::Executable Exe = loadExecutable(Input);
  sim::Machine M(Exe, Opts);
  if (Trace)
    M.setTraceHook([](const sim::TraceEvent &E) {
      std::fprintf(stderr, "0x%08llx: %s\n", (unsigned long long)E.PC,
                   isa::disassemble(E.I, E.PC).c_str());
    });
  sim::armInjections(Injections, M);

  // For instrumented executables, a trap still runs the tool's registered
  // finalization (re-entry at __exit) so the analysis report survives the
  // crash — unless --no-recover asks for the bare trap.
  RecoveryResult RR;
  if (Recover)
    RR = runWithRecovery(Exe, M, Fuel);
  else
    RR.Result = M.run(Fuel);
  const sim::RunResult &R = RR.Result;

  std::fputs(M.vfs().stdoutText().c_str(), stdout);
  std::fputs(M.vfs().stderrText().c_str(), stderr);

  for (const std::string &F : Dumps) {
    if (!M.vfs().fileExists(F)) {
      std::fprintf(stderr, "axp-run: no file '%s' in the VFS\n", F.c_str());
      continue;
    }
    std::printf("--- %s ---\n%s", F.c_str(),
                M.vfs().fileContents(F).c_str());
  }

  if (Stats) {
    const sim::Stats &S = M.stats();
    std::fprintf(stderr,
                 "instructions %llu\nloads %llu\nstores %llu\n"
                 "cond-branches %llu\ntaken %llu\ncalls %llu\n"
                 "syscalls %llu\nunaligned %llu\n",
                 (unsigned long long)S.Instructions,
                 (unsigned long long)S.Loads,
                 (unsigned long long)S.Stores,
                 (unsigned long long)S.CondBranches,
                 (unsigned long long)S.TakenBranches,
                 (unsigned long long)S.Calls,
                 (unsigned long long)S.Syscalls,
                 (unsigned long long)S.UnalignedAccesses);
  }

  switch (R.Status) {
  case sim::RunStatus::Exited:
    return int(R.ExitCode & 0xFF);
  case sim::RunStatus::Halted:
    std::fprintf(stderr, "axp-run: program halted\n");
    return 0;
  case sim::RunStatus::Trap:
    std::fprintf(stderr, "axp-run: trap (%s) at pc 0x%llx: %s\n",
                 sim::trapKindName(R.Trap), (unsigned long long)R.FaultPC,
                 R.FaultMessage.c_str());
    if (R.Trap == sim::TrapKind::UnmappedAccess ||
        R.Trap == sim::TrapKind::WriteProtected ||
        R.Trap == sim::TrapKind::StackGuard ||
        R.Trap == sim::TrapKind::Unaligned)
      std::fprintf(stderr, "axp-run: faulting address 0x%llx\n",
                   (unsigned long long)R.FaultAddr);
    if (isInstrumented(Exe)) {
      std::fprintf(stderr, "axp-run: original pc 0x%llx%s\n",
                   (unsigned long long)RR.OrigFaultPC,
                   RR.OrigFaultPC ? "" : " (inserted/analysis code)");
      if (RR.Recovered)
        std::fprintf(stderr,
                     "axp-run: analysis finalization ran despite the trap\n");
    }
    return 124;
  case sim::RunStatus::FuelExhausted:
    std::fprintf(stderr, "axp-run: instruction budget exhausted\n");
    return 125;
  }
  return 1;
}
