//===- cli/atomd.cpp - The atomd daemon command ---------------------------===//
//
// Runs and manages the instrumentation-as-a-service daemon (docs/DAEMON.md):
//
//   atomd serve --socket <path> [--jobs N] [--queue-max N]
//         [--client-quota N] [--cache-bytes SZ]
//         [--store <dir>] [--store-bytes SZ]
//         [--metrics-http <port>] [--metrics-out <file>]
//         [--metrics-format json|prom] [--trace-out <file>]
//         [--isolate|--no-isolate] [--deadline-ms N]
//         [--worker-requests N] [--breaker-threshold N]
//         [--breaker-cooldown-ms N]
//   atomd status --socket <path>
//   atomd ping --socket <path>
//   atomd shutdown --socket <path>
//   atomd trace <trace-id> --socket <path>
//   atomd tail --socket <path>
//
// serve blocks until a shutdown request (socket op, SIGINT, or SIGTERM),
// prints "atomd: listening on <path>" once ready, and — with
// --metrics-http — "atomd: metrics on http://127.0.0.1:<port>/metrics"
// (port 0 binds an ephemeral port and prints the real one). status prints
// the daemon's status reply as one JSON document followed by a one-line
// human summary (uptime + circuit-breaker state counts). trace fetches a
// finished request's stitched cross-process trace by 32-hex id; tail
// lists the most recent trace summaries (docs/OBSERVABILITY.md).
//
// serve runs tool pipelines in isolated worker processes by default
// (docs/RESILIENCE.md): a crashing or hanging request costs one worker,
// never the daemon. --no-isolate restores the in-process pipeline. There
// is also a hidden `atomd __worker` mode — the worker-process service
// loop the daemon spawns; it is not part of the CLI surface.
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "atomd/Client.h"
#include "atomd/Daemon.h"
#include "atomd/Worker.h"

#include <csignal>
#include <thread>
#include <unistd.h>

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr,
               "usage: atomd serve --socket <path> [--jobs N] "
               "[--queue-max N] [--client-quota N]\n"
               "             [--cache-bytes SZ] [--store <dir>] "
               "[--store-bytes SZ]\n"
               "             [--metrics-http <port>] [--metrics-out <file>] "
               "[--metrics-format json|prom] [--trace-out <file>]\n"
               "             [--isolate|--no-isolate] [--deadline-ms N] "
               "[--worker-requests N]\n"
               "             [--breaker-threshold N] "
               "[--breaker-cooldown-ms N]\n"
               "       atomd status|ping|shutdown --socket <path>\n"
               "       atomd trace <trace-id> --socket <path>\n"
               "       atomd tail --socket <path>\n");
  std::exit(2);
}

static int SignalPipe[2] = {-1, -1};

static void onSignal(int) {
  char C = 1;
  // Self-pipe: the only async-signal-safe thing here is write().
  (void)!::write(SignalPipe[1], &C, 1);
}

static int serve(const atomd::DaemonOptions &Opts,
                 const MetricsOptions &Metrics, const TraceOptions &Trace) {
  // The daemon is an observability citizen by construction: counters,
  // latency histograms, and the Prometheus endpoint all need the registry.
  obs::Registry::global().setEnabled(true);

  atomd::Daemon D(Opts);
  std::string Err;
  if (!D.start(Err))
    die(Err);
  std::printf("atomd: listening on %s\n", Opts.SocketPath.c_str());
  if (D.metricsPort() >= 0)
    std::printf("atomd: metrics on http://127.0.0.1:%d/metrics\n",
                D.metricsPort());
  std::fflush(stdout);

  std::thread SigThread;
  if (::pipe(SignalPipe) == 0) {
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    SigThread = std::thread([&D] {
      char C;
      if (::read(SignalPipe[0], &C, 1) == 1)
        D.requestShutdown();
    });
  }

  D.wait();

  if (SigThread.joinable()) {
    ::close(SignalPipe[1]); // wakes the signal thread if no signal came
    SigThread.join();
    ::close(SignalPipe[0]);
  }
  Metrics.write();
  // The daemon's own ring: queue-wait and dispatch spans for every recent
  // request, viewable in Perfetto alongside per-request stitched traces.
  Trace.writeOwnRing("atomd");
  std::printf("atomd: stopped\n");
  return 0;
}

static int callSimple(const std::string &Socket, const std::string &Op) {
  atomd::Client Cl;
  std::string Err;
  if (!Cl.connect(Socket, Err))
    die(Err);
  atomd::Reply R;
  atomd::Frame F;
  if (!Cl.call(atomd::makeSimpleRequest(Cl.nextId(), Op), {}, R, F, Err))
    die(Err);
  if (!R.Ok)
    die("daemon error: " + R.Error);
  if (Op == "status") {
    std::printf("%s\n", F.Json.c_str());
    // Human summary under the JSON: uptime plus the per-tool circuit
    // breaker states folded into counts (docs/RESILIENCE.md).
    unsigned Closed = 0, Open = 0, HalfOpen = 0;
    if (const obs::json::Value *B = R.Doc.find("breakers"))
      for (const auto &[Tool, St] : B->Members) {
        (void)Tool;
        std::string S = St.str("state");
        if (S == "open")
          ++Open;
        else if (S == "half-open")
          ++HalfOpen;
        else
          ++Closed;
      }
    const obs::json::Value *Up = R.Doc.find("uptime-s");
    std::printf(
        "atomd: up %.1fs, breakers: %u closed, %u open, %u half-open\n",
        Up ? Up->asDouble() : 0.0, Closed, Open, HalfOpen);
  } else if (Op == "ping")
    std::printf("atomd: protocol version %llu\n",
                (unsigned long long)R.Doc.u64("version"));
  else if (Op == "shutdown")
    std::printf("atomd: shutdown requested\n");
  return 0;
}

/// `atomd trace <id>`: fetches one stitched cross-process trace from the
/// daemon's in-memory index and prints the reply document (jq-friendly;
/// the stitched doc is under its "trace" key).
static int traceCommand(const std::string &Socket, const std::string &IdHex) {
  atomd::Client Cl;
  std::string Err;
  if (!Cl.connect(Socket, Err))
    die(Err);
  obs::JsonWriter W;
  W.beginObject();
  W.key("op");
  W.value("trace");
  W.key("id");
  W.value(Cl.nextId());
  W.key("trace");
  W.value(IdHex);
  W.endObject();
  atomd::Reply R;
  atomd::Frame F;
  if (!Cl.call(W.take(), {}, R, F, Err))
    die(Err);
  if (!R.Ok)
    die("daemon error: " + R.Error);
  std::printf("%s\n", F.Json.c_str());
  return 0;
}

/// `atomd tail`: one line per recent request, newest last.
static int tailCommand(const std::string &Socket) {
  atomd::Client Cl;
  std::string Err;
  if (!Cl.connect(Socket, Err))
    die(Err);
  atomd::Reply R;
  atomd::Frame F;
  if (!Cl.call(atomd::makeSimpleRequest(Cl.nextId(), "tail"), {}, R, F, Err))
    die(Err);
  if (!R.Ok)
    die("daemon error: " + R.Error);
  const obs::json::Value *Ts = R.Doc.find("traces");
  if (!Ts || Ts->Items.empty()) {
    std::printf("atomd: no traces recorded\n");
    return 0;
  }
  for (const obs::json::Value &T : Ts->Items)
    std::printf("%s  %-20s %-18s %8llu us\n", T.str("trace_id").c_str(),
                T.str("tool").c_str(), T.str("outcome").c_str(),
                (unsigned long long)T.u64("total-us"));
  return 0;
}

// Resolves the path to this very binary so serve can respawn it as a
// worker. /proc/self/exe is authoritative on Linux; argv[0] is the
// fallback for exotic mounts.
static std::string selfExePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = 0;
    return Buf;
  }
  return Argv0 ? Argv0 : "atomd";
}

// Hidden worker-process mode: `atomd __worker [--store-dir D]
// [--store-bytes SZ] [--cache-bytes SZ]`. The daemon spawns these; the
// service loop speaks frames on the channel fd until EOF.
static int workerCommand(int argc, char **argv) {
  atomd::WorkerConfig C;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--store-dir" && I + 1 < argc)
      C.StoreDir = argv[++I];
    else if (A == "--store-bytes" && I + 1 < argc)
      C.StoreBytes = parseByteSizeArg("--store-bytes", argv[++I]);
    else if (A == "--cache-bytes" && I + 1 < argc)
      C.CacheBytes = parseByteSizeArg("--cache-bytes", argv[++I]);
    else
      die("unknown __worker argument: " + A);
  }
  return atomd::workerMain(C);
}

int main(int argc, char **argv) {
  if (argc < 2)
    usage();
  std::string Cmd = argv[1];
  if (Cmd == "__worker")
    return workerCommand(argc, argv);
  if (Cmd != "serve" && Cmd != "status" && Cmd != "ping" &&
      Cmd != "shutdown" && Cmd != "trace" && Cmd != "tail")
    usage();

  std::string TraceId;
  int FlagStart = 2;
  if (Cmd == "trace") {
    if (argc < 3 || argv[2][0] == '-')
      die("trace requires a trace-id operand (32 hex digits)");
    TraceId = argv[2];
    FlagStart = 3;
  }

  atomd::DaemonOptions Opts;
  // The CLI daemon isolates by default: a crashing tool should never take
  // the service down. The library default stays in-process for embedders.
  Opts.Isolate = true;
  MetricsOptions Metrics;
  TraceOptions Trace;
  for (int I = FlagStart; I < argc; ++I) {
    std::string A = argv[I];
    if (Metrics.consume(argc, argv, I) || Trace.consume(argc, argv, I)) {
      continue;
    } else if (A == "--socket" && I + 1 < argc) {
      Opts.SocketPath = argv[++I];
    } else if (A == "--jobs" && I + 1 < argc) {
      Opts.Jobs = unsigned(parseUnsignedArg("--jobs", argv[++I]));
    } else if (A == "--queue-max" && I + 1 < argc) {
      Opts.QueueMax = unsigned(parseUnsignedArg("--queue-max", argv[++I]));
      if (Opts.QueueMax == 0)
        die("--queue-max must be at least 1");
    } else if (A == "--client-quota" && I + 1 < argc) {
      Opts.ClientQuota =
          unsigned(parseUnsignedArg("--client-quota", argv[++I]));
      if (Opts.ClientQuota == 0)
        die("--client-quota must be at least 1");
    } else if (A == "--cache-bytes" && I + 1 < argc) {
      Opts.CacheBytes = parseByteSizeArg("--cache-bytes", argv[++I]);
    } else if (A == "--store" && I + 1 < argc) {
      Opts.StoreDir = argv[++I];
    } else if (A == "--store-bytes" && I + 1 < argc) {
      Opts.StoreBytes = parseByteSizeArg("--store-bytes", argv[++I]);
    } else if (A == "--metrics-http" && I + 1 < argc) {
      uint64_t Port = parseUnsignedArg("--metrics-http", argv[++I]);
      if (Port > 65535)
        die("--metrics-http port out of range");
      Opts.MetricsPort = int(Port);
    } else if (A == "--isolate") {
      Opts.Isolate = true;
    } else if (A == "--no-isolate") {
      Opts.Isolate = false;
    } else if (A == "--deadline-ms" && I + 1 < argc) {
      Opts.DeadlineMs = parseUnsignedArg("--deadline-ms", argv[++I]);
    } else if (A == "--worker-requests" && I + 1 < argc) {
      Opts.WorkerRequests =
          unsigned(parseUnsignedArg("--worker-requests", argv[++I]));
    } else if (A == "--breaker-threshold" && I + 1 < argc) {
      Opts.BreakerThreshold =
          unsigned(parseUnsignedArg("--breaker-threshold", argv[++I]));
      if (Opts.BreakerThreshold == 0)
        die("--breaker-threshold must be at least 1");
    } else if (A == "--breaker-cooldown-ms" && I + 1 < argc) {
      Opts.BreakerCooldownMs =
          parseUnsignedArg("--breaker-cooldown-ms", argv[++I]);
    } else {
      usage();
    }
  }
  if (Opts.SocketPath.empty())
    die("--socket is required");
  if (Opts.Isolate)
    Opts.WorkerExe = selfExePath(argv[0]);

  if (Cmd == "serve")
    return serve(Opts, Metrics, Trace);
  if (Cmd == "trace")
    return traceCommand(Opts.SocketPath, TraceId);
  if (Cmd == "tail")
    return tailCommand(Opts.SocketPath);
  return callSimple(Opts.SocketPath, Cmd);
}
