//===- cli/axp-as.cpp - Assembler driver ----------------------------------===//
//
//   axp-as file.s [-o file.obj]
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "asm/Assembler.h"

using namespace atom;
using namespace atom::cli;

static void usage() {
  std::fprintf(stderr, "usage: axp-as <file.s> [-o <file.obj>]\n");
  std::exit(2);
}

int main(int argc, char **argv) {
  std::string Input, Output;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-o" && I + 1 < argc)
      Output = argv[++I];
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();

  std::string Source;
  if (!readTextFile(Input, Source))
    die("cannot read '" + Input + "'");

  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Source, Input, M, Diags))
    dieWithDiags("assembly of '" + Input + "' failed", Diags);

  if (Output.empty()) {
    Output = Input;
    if (endsWith(Output, ".s"))
      Output.resize(Output.size() - 2);
    Output += ".obj";
  }
  if (!writeFile(Output, M.serialize()))
    die("cannot write '" + Output + "'");
  return 0;
}
