//===- cli/axp-objdump.cpp - Inspect objects and executables --------------===//
//
//   axp-objdump file.obj|file.exe [-d] [-t] [-r]
//
//   -d  disassemble text (default if no flags given)
//   -t  symbol table
//   -r  relocations
//
//===----------------------------------------------------------------------===//

#include "CliSupport.h"

#include "isa/Isa.h"

#include <map>

using namespace atom;
using namespace atom::cli;
using namespace atom::obj;

static void usage() {
  std::fprintf(stderr, "usage: axp-objdump <file.obj|file.exe> [-d] [-t]"
                       " [-r]\n");
  std::exit(2);
}

static const char *sectionName(SymSection S) {
  switch (S) {
  case SymSection::Text: return "text";
  case SymSection::Data: return "data";
  case SymSection::Bss: return "bss";
  case SymSection::Absolute: return "abs";
  case SymSection::Undefined: return "undef";
  }
  return "?";
}

static const char *relocName(RelocKind K) {
  switch (K) {
  case RelocKind::Abs64: return "ABS64";
  case RelocKind::Hi16: return "HI16";
  case RelocKind::Lo16: return "LO16";
  case RelocKind::Br21: return "BR21";
  }
  return "?";
}

static void disassembleText(const std::vector<uint8_t> &Text, uint64_t Base,
                            const std::vector<Symbol> &Symbols) {
  // Procedure starts by address for labels.
  std::map<uint64_t, std::string> Labels;
  for (const Symbol &S : Symbols)
    if (S.Section == SymSection::Text)
      Labels[S.Value] = S.Name;

  for (uint64_t Off = 0; Off + 4 <= Text.size(); Off += 4) {
    uint64_t PC = Base + Off;
    auto L = Labels.find(PC);
    if (L != Labels.end())
      std::printf("%s:\n", L->second.c_str());
    uint32_t Word = read32(Text, Off);
    isa::Inst I;
    if (isa::decode(Word, I))
      std::printf("  0x%08llx: %08x  %s\n", (unsigned long long)PC, Word,
                  isa::disassemble(I, PC).c_str());
    else
      std::printf("  0x%08llx: %08x  <data>\n", (unsigned long long)PC,
                  Word);
  }
}

static void dumpSymbols(const std::vector<Symbol> &Symbols) {
  std::printf("SYMBOL TABLE:\n");
  for (const Symbol &S : Symbols)
    std::printf("  0x%08llx %-5s %c%c size %-6llu %s\n",
                (unsigned long long)S.Value, sectionName(S.Section),
                S.Global ? 'g' : 'l', S.IsProc ? 'F' : ' ',
                (unsigned long long)S.Size, S.Name.c_str());
}

static void dumpRelocs(const char *Section, const std::vector<Reloc> &Rs,
                       const std::vector<Symbol> &Symbols) {
  std::printf("RELOCATIONS [%s]:\n", Section);
  for (const Reloc &R : Rs)
    std::printf("  0x%08llx %-5s %s%+lld\n", (unsigned long long)R.Offset,
                relocName(R.Kind), Symbols[R.SymIndex].Name.c_str(),
                (long long)R.Addend);
}

int main(int argc, char **argv) {
  std::string Input;
  bool Disasm = false, Syms = false, Relocs = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-d")
      Disasm = true;
    else if (A == "-t")
      Syms = true;
    else if (A == "-r")
      Relocs = true;
    else if (!A.empty() && A[0] == '-')
      usage();
    else if (Input.empty())
      Input = A;
    else
      usage();
  }
  if (Input.empty())
    usage();
  if (!Disasm && !Syms && !Relocs)
    Disasm = true;

  std::vector<uint8_t> Bytes;
  if (!readFile(Input, Bytes))
    die("cannot read '" + Input + "'");

  Executable E;
  ObjectModule M;
  if (Executable::deserialize(Bytes, E)) {
    std::printf("%s: AEXE executable, entry 0x%llx, text 0x%llx+%zu, "
                "data 0x%llx+%zu, bss %llu, heap 0x%llx\n",
                Input.c_str(), (unsigned long long)E.Entry,
                (unsigned long long)E.TextStart, E.Text.size(),
                (unsigned long long)E.DataStart, E.Data.size(),
                (unsigned long long)E.BssSize,
                (unsigned long long)E.HeapStart);
    for (const Segment &S : E.Segments)
      std::printf("  segment 0x%llx+%zu (analysis data)\n",
                  (unsigned long long)S.Addr, S.Bytes.size());
    if (Disasm)
      disassembleText(E.Text, E.TextStart, E.Symbols);
    if (Syms)
      dumpSymbols(E.Symbols);
    if (Relocs) {
      dumpRelocs("text", E.TextRelocs, E.Symbols);
      dumpRelocs("data", E.DataRelocs, E.Symbols);
    }
    return 0;
  }
  if (ObjectModule::deserialize(Bytes, M)) {
    std::printf("%s: AOBJ object module '%s', text %zu, data %zu, bss "
                "%llu\n",
                Input.c_str(), M.Name.c_str(), M.Text.size(),
                M.Data.size(), (unsigned long long)M.BssSize);
    if (Disasm)
      disassembleText(M.Text, 0, M.Symbols);
    if (Syms)
      dumpSymbols(M.Symbols);
    if (Relocs) {
      dumpRelocs("text", M.TextRelocs, M.Symbols);
      dumpRelocs("data", M.DataRelocs, M.Symbols);
    }
    return 0;
  }
  die("'" + Input + "' is neither an AOBJ module nor an AEXE executable");
}
